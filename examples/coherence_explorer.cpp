// coherence_explorer: interactive-style exploration of MESIF state costs.
//
// Sweeps every coherence state (M / E / S+F) across every placement distance
// (own caches, another core same node, other socket) in a chosen snoop mode,
// and prints the full latency matrix together with the perf-counter evidence
// (core snoops, broadcasts, forwards) explaining each number — the
// reproduction of the paper's §VI analysis for arbitrary configurations.
//
//   $ ./coherence_explorer --mode cod --level l3
#include <cstdio>
#include <optional>
#include <string>

#include "core/hswbench.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  std::string mode = "source";
  std::string level = "l3";
  std::int64_t reader = 0;
  hsw::CommandLine cli(
      "coherence_explorer: latency matrix over MESIF states and distances");
  cli.add_string("mode", &mode, "snoop mode: source | home | cod");
  cli.add_string("level", &level, "data location: cache | l3");
  cli.add_int("reader", &reader, "measuring core id");
  std::optional<hsw::SnoopMode> parsed_mode;
  cli.add_check([&]() -> std::optional<std::string> {
    parsed_mode = hsw::parse_snoop_mode(mode);
    if (!parsed_mode) return "unknown --mode '" + mode + "' (source|home|cod)";
    if (level != "cache" && level != "l3") {
      return "unknown --level '" + level + "' (cache|l3)";
    }
    return std::nullopt;
  });
  switch (cli.parse_status(argc, argv)) {
    case hsw::CommandLine::ParseStatus::kOk: break;
    case hsw::CommandLine::ParseStatus::kHelp: return 0;
    case hsw::CommandLine::ParseStatus::kError: return 1;
  }

  const hsw::SystemConfig config = hsw::SystemConfig::for_mode(*parsed_mode);
  const hsw::CacheLevel cache_level =
      level == "cache" ? hsw::CacheLevel::kL1L2 : hsw::CacheLevel::kL3;

  hsw::System probe(config);
  const hsw::SystemTopology& topo = probe.topology();
  std::printf("machine: %s\n\n", config.describe().c_str());

  hsw::Table table({"owner", "state", "latency", "serviced by",
                    "core snoops", "broadcasts"});

  const int reader_core = static_cast<int>(reader);
  const int reader_node = topo.node_of_core(reader_core);
  std::vector<std::pair<std::string, int>> owners;
  owners.emplace_back("self", reader_core);
  owners.emplace_back("same node", topo.node(reader_node).cores[1]);
  for (int n = 0; n < topo.node_count(); ++n) {
    if (n == reader_node) continue;
    owners.emplace_back("node " + std::to_string(n), topo.node(n).cores[0]);
  }

  for (const auto& [owner_label, owner_core] : owners) {
    for (hsw::Mesif state :
         {hsw::Mesif::kModified, hsw::Mesif::kExclusive, hsw::Mesif::kShared}) {
      hsw::System system(config);
      hsw::LatencyConfig lc;
      lc.reader_core = reader_core;
      lc.placement.owner_core = owner_core;
      lc.placement.memory_node = topo.node_of_core(owner_core);
      lc.placement.state = state;
      if (state == hsw::Mesif::kShared) {
        // A second core of the owner's node reads the data; its node keeps
        // the Forward copy.
        lc.placement.sharers = {
            topo.node(topo.node_of_core(owner_core)).cores[2]};
      }
      lc.placement.level = cache_level;
      lc.buffer_bytes = hsw::kib(256);
      lc.max_measured_lines = 2048;

      const hsw::LatencyResult r = hsw::measure_latency(system, lc);
      table.add_row(
          {owner_label, std::string(hsw::to_string(state)),
           hsw::format_ns(r.mean_ns), hsw::to_string(r.dominant_source),
           std::to_string(
               r.counters[static_cast<std::size_t>(hsw::Ctr::kCoreSnoops)]),
           std::to_string(r.counters[static_cast<std::size_t>(
               hsw::Ctr::kSnoopBroadcasts)])});
    }
    table.add_separator();
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
