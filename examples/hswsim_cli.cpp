// hswsim_cli: general-purpose driver for ad-hoc experiments.
//
// Subcommands:
//   latency    measure a placement-controlled latency
//   bandwidth  measure a single- or multi-core bandwidth
//   topo       print the machine topology and distance matrices
//   trace      run a synthetic trace and print the per-source breakdown
//
// Examples:
//   hswsim_cli latency --mode cod --reader 0 --owner 6 --state M --size 256KiB
//   hswsim_cli bandwidth --mode home --cores 4 --node 1 --size 2MiB
//   hswsim_cli topo --mode cod
//   hswsim_cli trace --pattern hotset --cores 8
#include <cstdio>
#include <optional>
#include <string>
#include <utility>

#include "core/hswbench.h"
#include "metrics/report.h"
#include "obs/line_stats.h"
#include "obs/resource_stats.h"
#include "util/cli.h"
#include "workload/trace.h"

namespace {

// Registers the post-parse check that resolves --mode/--protocol into a
// SystemConfig.  The library parsers return std::optional; running them
// inside a CommandLine check keeps ParseStatus::kError the single
// argument-error exit path (no exit() between parse and main body).
void add_config_check(hsw::CommandLine& cli, const std::string& mode,
                      const std::string& protocol,
                      std::optional<hsw::SystemConfig>* config) {
  cli.add_check([&mode, &protocol, config]() -> std::optional<std::string> {
    const auto parsed_mode = hsw::parse_snoop_mode(mode);
    if (!parsed_mode) {
      return "unknown --mode '" + mode + "' (source|home|cod)";
    }
    const auto parsed_protocol = hsw::parse_protocol(protocol);
    if (!parsed_protocol) {
      return "unknown --protocol '" + protocol + "' (mesif|mesi|moesi|dragon)";
    }
    *config = hsw::SystemConfig::for_mode(*parsed_mode);
    (*config)->protocol = *parsed_protocol;
    return std::nullopt;
  });
}

int cmd_latency(int argc, char** argv) {
  std::string mode = "source";
  std::string state = "M";
  std::string level = "auto";
  std::int64_t reader = 0;
  std::int64_t owner = 0;
  std::int64_t sharer = -1;
  std::int64_t node = -1;
  std::uint64_t size = hsw::kib(64);
  std::string protocol = "mesif";
  hsw::CommandLine cli("hswsim_cli latency: placement-controlled latency");
  cli.add_string("mode", &mode, "source | home | cod");
  cli.add_string("protocol", &protocol, "mesif | mesi | moesi | dragon");
  cli.add_string("state", &state, "coherence state: M | E | S");
  cli.add_string("level", &level, "auto | l3 | memory");
  cli.add_int("reader", &reader, "measuring core");
  cli.add_int("owner", &owner, "core that places the data");
  cli.add_int("sharer", &sharer, "optional extra reader (takes Forward)");
  cli.add_int("node", &node, "memory NUMA node (-1: owner's node)");
  cli.add_bytes("size", &size, "data-set size");
  std::optional<hsw::SystemConfig> config;
  add_config_check(cli, mode, protocol, &config);
  std::optional<hsw::Mesif> parsed_state;
  cli.add_check([&]() -> std::optional<std::string> {
    parsed_state = hsw::parse_mesif(state);
    if (!parsed_state) return "unknown --state '" + state + "' (M|O|E|S|I|F)";
    if (level != "auto" && level != "l3" && level != "memory") {
      return "unknown --level '" + level + "' (auto|l3|memory)";
    }
    return std::nullopt;
  });
  switch (cli.parse_status(argc, argv)) {
    case hsw::CommandLine::ParseStatus::kOk: break;
    case hsw::CommandLine::ParseStatus::kHelp: return 0;
    case hsw::CommandLine::ParseStatus::kError: return 1;
  }

  hsw::System system(*config);
  hsw::LatencyConfig lc;
  lc.reader_core = static_cast<int>(reader);
  lc.placement.owner_core = static_cast<int>(owner);
  lc.placement.memory_node =
      node >= 0 ? static_cast<int>(node)
                : system.topology().node_of_core(static_cast<int>(owner));
  lc.placement.state = *parsed_state;
  if (sharer >= 0) lc.placement.sharers = {static_cast<int>(sharer)};
  if (level == "l3") lc.placement.level = hsw::CacheLevel::kL3;
  if (level == "memory") lc.placement.level = hsw::CacheLevel::kMemory;
  lc.buffer_bytes = size;

  const hsw::LatencyResult r = hsw::measure_latency(system, lc);
  std::printf("machine : %s\n", system.config().describe().c_str());
  std::printf("latency : %s (min %s, max %s over %llu loads)\n",
              hsw::format_ns(r.mean_ns).c_str(),
              hsw::format_ns(r.min_ns).c_str(),
              hsw::format_ns(r.max_ns).c_str(),
              static_cast<unsigned long long>(r.lines_measured));
  std::printf("sources :");
  for (std::size_t s = 0; s < r.source_counts.size(); ++s) {
    if (r.source_counts[s] == 0) continue;
    std::printf(" %s=%.1f%%",
                hsw::to_string(static_cast<hsw::ServiceSource>(s)),
                100.0 * r.source_fraction(static_cast<hsw::ServiceSource>(s)));
  }
  std::printf("\n");
  return 0;
}

int cmd_bandwidth(int argc, char** argv) {
  std::string mode = "source";
  std::string engine = "analytic";
  std::int64_t cores = 1;
  std::int64_t node = 0;
  std::uint64_t size = hsw::mib(2);
  bool write = false;
  std::string protocol = "mesif";
  std::string resstats;
  hsw::CommandLine cli("hswsim_cli bandwidth: concurrent memory streams");
  cli.add_string("mode", &mode, "source | home | cod");
  cli.add_string("protocol", &protocol, "mesif | mesi | moesi | dragon");
  cli.add_string("engine", &engine,
                 "rate engine: analytic (max-min model) | simulated "
                 "(event-driven queueing)");
  cli.add_int("cores", &cores, "number of concurrently streaming cores (0..n-1)");
  cli.add_int("node", &node, "memory NUMA node the streams target");
  cli.add_bytes("size", &size, "buffer bytes per stream");
  cli.add_bool("write", &write, "store streams instead of loads");
  cli.add_string("resstats", &resstats,
                 "write per-resource queueing telemetry (JSON, simulated "
                 "engine only; view with hswsim-report bottlenecks)");
  std::optional<hsw::SystemConfig> config;
  add_config_check(cli, mode, protocol, &config);
  std::optional<hsw::BandwidthEngine> parsed_engine;
  cli.add_check([&]() -> std::optional<std::string> {
    parsed_engine = hsw::parse_bandwidth_engine(engine);
    if (!parsed_engine) {
      return "unknown --engine '" + engine + "' (analytic|simulated)";
    }
    // Only the event-driven engine has FIFO servers to observe; an analytic
    // run would write an all-zero resources report.
    if (!resstats.empty() &&
        *parsed_engine != hsw::BandwidthEngine::kSimulated) {
      return std::string("--resstats requires --engine simulated");
    }
    return std::nullopt;
  });
  switch (cli.parse_status(argc, argv)) {
    case hsw::CommandLine::ParseStatus::kOk: break;
    case hsw::CommandLine::ParseStatus::kHelp: return 0;
    case hsw::CommandLine::ParseStatus::kError: return 1;
  }

  hsw::System system(*config);
  std::optional<hsw::obs::ResourceStatsRecorder> recorder;
  if (!resstats.empty()) recorder.emplace();
  hsw::BandwidthConfig bc;
  for (int c = 0; c < cores; ++c) {
    hsw::StreamConfig stream;
    stream.core = c;
    stream.write = write;
    stream.placement.owner_core = c;
    stream.placement.memory_node = static_cast<int>(node);
    stream.placement.state = hsw::Mesif::kModified;
    stream.placement.level = hsw::CacheLevel::kMemory;
    bc.streams.push_back(stream);
  }
  bc.buffer_bytes = size;
  bc.engine = *parsed_engine;
  if (recorder) bc.instrumentation.resstats = &*recorder;
  const hsw::BandwidthResult r = hsw::measure_bandwidth(system, bc);
  std::printf("machine   : %s\n", system.config().describe().c_str());
  std::printf("engine    : %s\n", hsw::to_string(bc.engine));
  std::printf("aggregate : %s\n", hsw::format_gbps(r.total_gbps).c_str());
  for (std::size_t i = 0; i < r.streams.size(); ++i) {
    std::printf("  core %-2zu : %s  (probe %s, %s%s%s%s)\n", i,
                hsw::format_gbps(r.streams[i].gbps).c_str(),
                hsw::format_ns(r.streams[i].probe_latency_ns).c_str(),
                hsw::to_string(r.streams[i].source),
                r.streams[i].stale_directory ? ", stale directory" : "",
                r.streams[i].bottleneck.empty() ? "" : ", bottleneck ",
                r.streams[i].bottleneck.c_str());
  }
  if (recorder) {
    hsw::obs::ResourceStatsHub hub;
    hub.absorb(std::move(*recorder));
    hsw::metrics::ReportManifest manifest;
    manifest.tool = "hswsim_cli";
    manifest.config = "bandwidth --mode " + mode + " --cores " +
                      std::to_string(cores) + ", " +
                      system.config().describe();
    manifest.protocol = std::string(hsw::to_string(system.config().protocol));
    manifest.timing_hash = hsw::timing_fingerprint(
        hsw::TimingParams::haswell_ep(),
        hsw::to_string(system.config().protocol));
    manifest.git = hsw::metrics::git_describe();
    if (!hsw::obs::write_resources_report(resstats, manifest, hub.merged())) {
      std::fprintf(stderr, "failed to write resources report %s\n",
                   resstats.c_str());
      return 1;
    }
    std::printf("wrote %s\n", resstats.c_str());
  }
  return 0;
}

int cmd_topo(int argc, char** argv) {
  std::string mode = "source";
  const std::string protocol = "mesif";  // topology is protocol-independent
  hsw::CommandLine cli("hswsim_cli topo: topology and distances");
  cli.add_string("mode", &mode, "source | home | cod");
  std::optional<hsw::SystemConfig> config;
  add_config_check(cli, mode, protocol, &config);
  switch (cli.parse_status(argc, argv)) {
    case hsw::CommandLine::ParseStatus::kOk: break;
    case hsw::CommandLine::ParseStatus::kHelp: return 0;
    case hsw::CommandLine::ParseStatus::kError: return 1;
  }

  hsw::System system(*config);
  const hsw::SystemTopology& topo = system.topology();
  std::printf("%s\n\n", system.config().describe().c_str());
  for (const hsw::NumaNode& n : topo.nodes()) {
    std::printf("node %d (socket %d, cluster %d): cores", n.id, n.socket,
                n.cluster);
    for (int c : n.cores) std::printf(" %d", c);
    std::printf(", L3 %s, DRAM %s\n",
                hsw::format_bytes(system.node_l3_bytes(n.id)).c_str(),
                hsw::format_gbps(system.node_dram_bandwidth_gbps(n.id)).c_str());
  }
  std::printf("\ninter-node hops:\n");
  hsw::Table table({""});
  std::vector<std::string> header{""};
  for (int b = 0; b < topo.node_count(); ++b) {
    header.push_back("node" + std::to_string(b));
  }
  hsw::Table hops(header);
  for (int a = 0; a < topo.node_count(); ++a) {
    std::vector<std::string> row{"node" + std::to_string(a)};
    for (int b = 0; b < topo.node_count(); ++b) {
      row.push_back(std::to_string(topo.internode_hops(a, b)));
    }
    hops.add_row(std::move(row));
  }
  std::printf("%s", hops.to_string().c_str());
  return 0;
}

int cmd_trace(int argc, char** argv) {
  std::string mode = "source";
  std::string pattern = "hotset";
  std::int64_t cores = 4;
  std::int64_t accesses = 20000;
  bool concurrent = false;
  std::int64_t window = 10;
  std::string protocol = "mesif";
  std::string linestats;
  hsw::CommandLine cli("hswsim_cli trace: synthetic trace replay");
  cli.add_string("mode", &mode, "source | home | cod");
  cli.add_string("protocol", &protocol, "mesif | mesi | moesi | dragon");
  cli.add_string("linestats", &linestats,
                 "write the per-line flight-recorder report (JSON) to this "
                 "file; view with `hswsim-report lines` / `transitions`");
  cli.add_string("pattern", &pattern,
                 "stream | chase | producer-consumer | hotset | pingpong | "
                 "lock | false-sharing | false-sharing-padded");
  cli.add_int("cores", &cores, "participating cores");
  cli.add_int("accesses", &accesses, "approximate trace length");
  cli.add_bool("concurrent", &concurrent,
               "interleave per-core programs through the exec engine "
               "(MLP windows + resource back-pressure) instead of the "
               "serial replayer");
  cli.add_int("window", &window,
              "outstanding misses per core for --concurrent");
  std::optional<hsw::SystemConfig> config;
  add_config_check(cli, mode, protocol, &config);
  cli.add_check([&]() -> std::optional<std::string> {
    for (const char* known :
         {"stream", "chase", "producer-consumer", "hotset", "pingpong",
          "lock", "false-sharing", "false-sharing-padded"}) {
      if (pattern == known) return std::nullopt;
    }
    return "unknown --pattern '" + pattern + "'";
  });
  switch (cli.parse_status(argc, argv)) {
    case hsw::CommandLine::ParseStatus::kOk: break;
    case hsw::CommandLine::ParseStatus::kHelp: return 0;
    case hsw::CommandLine::ParseStatus::kError: return 1;
  }

  hsw::System system(*config);
  std::vector<int> core_list;
  for (int c = 0; c < cores; ++c) core_list.push_back(c);
  // Contention partner on the other socket when there is one.
  const int far_core = system.core_count() / 2;

  hsw::Trace trace;
  if (pattern == "stream") {
    trace = hsw::make_stream_trace(
        system, core_list,
        static_cast<std::uint64_t>(accesses / cores) * 64, 0.0, 1);
  } else if (pattern == "chase") {
    trace = hsw::make_chase_trace(system, core_list, hsw::mib(4),
                                  static_cast<std::uint64_t>(accesses / cores),
                                  1);
  } else if (pattern == "producer-consumer") {
    trace = hsw::make_producer_consumer_trace(
        system, 0, far_core, hsw::kib(16),
        static_cast<int>(accesses / 512), 1);
  } else if (pattern == "hotset") {
    trace = hsw::make_hotset_trace(system, core_list, 64,
                                   static_cast<std::uint64_t>(accesses), 0.3, 1);
  } else if (pattern == "pingpong") {
    trace = hsw::make_pingpong_trace(system, 0, far_core,
                                     static_cast<int>(accesses / 2));
  } else if (pattern == "lock") {
    trace = hsw::make_lock_trace(system, core_list, 4,
                                 static_cast<int>(accesses / 7), 1);
  } else {
    // The pattern check above admitted only the names handled here.
    trace = hsw::make_false_sharing_trace(
        system, core_list, static_cast<int>(accesses / cores),
        pattern == "false-sharing-padded");
  }

  std::printf("machine : %s\n", system.config().describe().c_str());

  // Optional flight recorder; both replayers take the same scope.
  std::optional<hsw::obs::LineStatsRecorder> recorder;
  hsw::InstrumentationScope scope;
  if (!linestats.empty()) {
    recorder.emplace(system.config().protocol, /*stream=*/0);
    scope.linestats = &*recorder;
  }

  hsw::ReplayStats stats;
  if (concurrent) {
    hsw::ConcurrentReplayConfig rc;
    rc.window = static_cast<int>(window);
    rc.instrumentation = scope;
    const hsw::exec::ProgramExecStats r =
        hsw::replay_concurrent(system, trace, rc);
    std::printf(
        "events  : %llu accesses + %llu flushes, mean %s per access\n"
        "timing  : makespan %s, aggregate %s, mean queue wait %s\n",
        static_cast<unsigned long long>(r.accesses),
        static_cast<unsigned long long>(r.flushes),
        hsw::format_ns(r.mean_access_ns()).c_str(),
        hsw::format_ns(r.makespan_ns).c_str(),
        hsw::format_gbps(r.aggregate_gbps).c_str(),
        hsw::format_ns(r.accesses ? r.queue_ns /
                                        static_cast<double>(r.accesses)
                                  : 0.0)
            .c_str());
    stats.events = r.accesses;  // flushes carry no service source
    stats.total_ns = r.access_ns;
    stats.by_source = r.by_source;
    stats.counters = r.counters;
  } else {
    stats = hsw::replay(system, trace, scope);
    std::printf("events  : %llu, mean %s per access\n",
                static_cast<unsigned long long>(stats.events),
                hsw::format_ns(stats.mean_ns()).c_str());
  }
  const std::uint64_t accessed = stats.events;
  std::printf("sources :");
  for (std::size_t s = 0; s < stats.by_source.size(); ++s) {
    if (stats.by_source[s] == 0) continue;
    std::printf(" %s=%.1f%%",
                hsw::to_string(static_cast<hsw::ServiceSource>(s)),
                100.0 * static_cast<double>(stats.by_source[s]) /
                    static_cast<double>(accessed));
  }
  std::printf("\ncounters:\n");
  for (std::size_t i = 0; i < hsw::kCtrCount; ++i) {
    if (stats.counters[i] == 0) continue;
    std::printf("  %-45s %llu\n",
                std::string(hsw::ctr_name(static_cast<hsw::Ctr>(i))).c_str(),
                static_cast<unsigned long long>(stats.counters[i]));
  }
  if (recorder) {
    hsw::obs::LineStatsHub hub;
    hub.absorb(std::move(*recorder));
    const hsw::obs::MergedLineStats merged = hub.merged();
    std::printf("patterns:");
    for (std::size_t p = 0; p < hsw::obs::kSharingPatternCount; ++p) {
      if (merged.patterns[p] == 0) continue;
      std::printf(" %s=%llu",
                  hsw::obs::to_string(static_cast<hsw::obs::SharingPattern>(p)),
                  static_cast<unsigned long long>(merged.patterns[p]));
    }
    std::printf("\n");
    hsw::metrics::ReportManifest manifest;
    manifest.tool = "hswsim_cli";
    manifest.config =
        "trace --pattern " + pattern + ", " + system.config().describe();
    manifest.protocol =
        std::string(hsw::to_string(system.config().protocol));
    manifest.timing_hash = hsw::timing_fingerprint(
        hsw::TimingParams::haswell_ep(),
        hsw::to_string(system.config().protocol));
    manifest.git = hsw::metrics::git_describe();
    if (!hsw::obs::write_linestats_report(linestats, manifest, merged)) {
      std::fprintf(stderr, "failed to write linestats report %s\n",
                   linestats.c_str());
      return 1;
    }
    std::printf("wrote %s\n", linestats.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: hswsim_cli <latency|bandwidth|topo|trace> [flags]\n"
                 "run a subcommand with --help for its flags\n");
    return 1;
  }
  const std::string command = argv[1];
  if (command == "latency") return cmd_latency(argc - 1, argv + 1);
  if (command == "bandwidth") return cmd_bandwidth(argc - 1, argv + 1);
  if (command == "topo") return cmd_topo(argc - 1, argv + 1);
  if (command == "trace") return cmd_trace(argc - 1, argv + 1);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
