// hswsim-serve: the experiment daemon.
//
// Owns the transport (a unix-domain socket, or stdio for tests and one-shot
// pipelines) and feeds newline-delimited JSON requests into serve::Server,
// which schedules batches on the thread pool and memoizes results in the
// content-addressed cache.  All policy lives in src/serve/; this file only
// moves bytes and owns the process exit.
//
//   hswsim-serve --socket /tmp/hswsim.sock --cache-dir /tmp/hswsim-cache
//   hswsim-serve --stdio < requests.ndjson > events.ndjson
//
// Shutdown: a {"op":"shutdown"} request stops the accept loop, drains
// connections, writes the cache stats dump (--stats), and exits 0.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "util/cli.h"

namespace {

// Writes one event line to a connection, tolerating partial writes; a
// vanished client must not kill the daemon (MSG_NOSIGNAL suppresses
// SIGPIPE; the failed send is simply dropped).
void send_line(int fd, const std::string& event) {
  std::string line = event;
  line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

struct Daemon {
  hsw::serve::Server* server = nullptr;
  std::atomic<bool> shutdown{false};
  int listen_fd = -1;
};

void serve_connection(Daemon* daemon, int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t i = buffer.find('\n', start); i != std::string::npos;
         i = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, i - start);
      start = i + 1;
      if (line.empty()) continue;
      if (!daemon->server->handle_request(
              line, [fd](const std::string& event) { send_line(fd, event); })) {
        daemon->shutdown.store(true);
        // Unblock accept() so the main loop can exit.
        ::shutdown(daemon->listen_fd, SHUT_RDWR);
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  close(fd);
}

int run_stdio(hsw::serve::Server& server) {
  std::string line;
  int c = 0;
  bool stop = false;
  while (!stop && (c = std::fgetc(stdin)) != EOF) {
    if (c != '\n') {
      line += static_cast<char>(c);
      continue;
    }
    if (!line.empty()) {
      stop = !server.handle_request(line, [](const std::string& event) {
        std::fwrite(event.data(), 1, event.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
      });
    }
    line.clear();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool stdio = false;
  std::string cache_dir = "hswsim-cache";
  std::uint64_t cache_cap = 256ull * 1024 * 1024;
  std::int64_t jobs = 0;
  std::string stats_path;

  hsw::CommandLine cli(
      "hswsim-serve: experiment server with a content-addressed result "
      "cache.\nAccepts newline-delimited JSON requests (see "
      "src/serve/server.h) over a\nunix socket (--socket) or stdio "
      "(--stdio).");
  cli.add_string("socket", &socket_path,
                 "unix-domain socket path to listen on");
  cli.add_bool("stdio", &stdio,
               "serve one client over stdin/stdout instead of a socket");
  cli.add_string("cache-dir", &cache_dir,
                 "directory for the content-addressed result cache");
  cli.add_bytes("cache-cap", &cache_cap,
                "cache capacity (LRU-evicted beyond this)");
  cli.add_int("jobs", &jobs,
              "worker threads for batch fan-out (0 = hardware concurrency)");
  cli.add_string("stats", &stats_path,
                 "write the cache stats dump here on shutdown");
  cli.add_check([&]() -> std::optional<std::string> {
    if (jobs < 0) return "--jobs must be >= 0";
    if (stdio != socket_path.empty()) {
      return "exactly one of --socket or --stdio is required";
    }
    if (!socket_path.empty() && socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return "--socket path too long for a unix socket";
    }
    return std::nullopt;
  });
  switch (cli.parse_status(argc, argv)) {
    case hsw::CommandLine::ParseStatus::kOk: break;
    case hsw::CommandLine::ParseStatus::kHelp: return 0;
    case hsw::CommandLine::ParseStatus::kError: return 1;
  }

  hsw::serve::ServerConfig config;
  config.cache.dir = cache_dir;
  config.cache.capacity_bytes = cache_cap;
  config.jobs = static_cast<unsigned>(jobs);
  hsw::serve::Server server(config);

  int rc = 0;
  if (stdio) {
    rc = run_stdio(server);
  } else {
    Daemon daemon;
    daemon.server = &server;
    daemon.listen_fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (daemon.listen_fd < 0) {
      std::perror("hswsim-serve: socket");
      return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    unlink(socket_path.c_str());
    if (bind(daemon.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0 ||
        listen(daemon.listen_fd, 16) != 0) {
      std::perror("hswsim-serve: bind/listen");
      close(daemon.listen_fd);
      return 1;
    }
    std::fprintf(stderr, "hswsim-serve: listening on %s\n",
                 socket_path.c_str());

    std::vector<std::thread> connections;
    while (!daemon.shutdown.load()) {
      const int fd = accept(daemon.listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (daemon.shutdown.load()) break;
        continue;
      }
      connections.emplace_back(serve_connection, &daemon, fd);
    }
    for (std::thread& t : connections) t.join();
    close(daemon.listen_fd);
    unlink(socket_path.c_str());
  }

  if (!stats_path.empty() && !server.cache().write_stats(stats_path)) {
    std::fprintf(stderr, "hswsim-serve: cannot write stats to '%s'\n",
                 stats_path.c_str());
    return 1;
  }
  return rc;
}
