// Quickstart: measure the classic latency ladder of a Haswell-EP socket.
//
// Builds the paper's dual-socket test system in the default (source snoop)
// configuration and walks a single core's view of the memory hierarchy:
// L1 -> L2 -> L3 -> local DRAM -> remote DRAM, plus one core-to-core
// transfer.  Compare the output with Fig. 4 of the paper.  A second table
// measures multi-core memory bandwidth under both bandwidth engines — the
// analytic fluid solver and the event-driven exec engine (Table VII's
// saturation curve, two ways).
//
// Everything used here comes from the single include "core/hswbench.h".
//
//   $ ./quickstart
#include <cstdio>

#include "core/hswbench.h"

int main() {
  hsw::System system(hsw::SystemConfig::source_snoop());
  std::printf("machine: %s\n\n", system.config().describe().c_str());

  hsw::Table table({"data location", "coherence state", "latency"});

  auto run = [&](const char* label, hsw::LatencyConfig config) {
    const hsw::LatencyResult r = hsw::measure_latency(system, config);
    table.add_row({label, std::string(hsw::to_string(config.placement.state)),
                   hsw::format_ns(r.mean_ns)});
    // Each experiment owns the caches: start the next one clean.
    system.drop_all_caches();
  };

  // Own cache hierarchy: the buffer size picks the level.
  for (auto [label, bytes] : {std::pair{"local L1", hsw::kib(16)},
                              {"local L2", hsw::kib(128)},
                              {"local L3", hsw::mib(4)}}) {
    hsw::LatencyConfig config;
    config.reader_core = 0;
    config.placement = {.owner_core = 0, .memory_node = 0,
                        .state = hsw::Mesif::kModified, .sharers = {},
                        .level = hsw::CacheLevel::kL1L2};
    config.buffer_bytes = bytes;
    run(label, config);
  }

  // Another core's modified data (core-to-core transfer, same socket).
  {
    hsw::LatencyConfig config;
    config.reader_core = 0;
    config.placement = {.owner_core = 1, .memory_node = 0,
                        .state = hsw::Mesif::kModified, .sharers = {},
                        .level = hsw::CacheLevel::kL1L2};
    config.buffer_bytes = hsw::kib(16);
    run("core 1's L1 (same socket)", config);
  }

  // Memory on both sockets.
  for (auto [label, node] :
       {std::pair{"local memory (node 0)", 0}, {"remote memory (node 1)", 1}}) {
    hsw::LatencyConfig config;
    config.reader_core = 0;
    config.placement = {.owner_core = 0, .memory_node = node,
                        .state = hsw::Mesif::kModified,
                        .sharers = {},
                        .level = hsw::CacheLevel::kMemory};
    config.buffer_bytes = hsw::mib(8);
    run(label, config);
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nPaper reference (Fig. 4): L1 1.6, L2 4.8, L3 21.2, "
              "other core's L1 53, local mem 96.4, remote mem 146 ns\n");

  // Multi-core local-read bandwidth, analytic vs simulated engine.
  hsw::Table bw_table({"cores", "analytic", "simulated"});
  for (int cores : {1, 4, 8}) {
    std::vector<std::string> row{std::to_string(cores)};
    for (auto engine : {hsw::BandwidthEngine::kAnalytic,
                        hsw::BandwidthEngine::kSimulated}) {
      hsw::System sys(hsw::SystemConfig::source_snoop());
      hsw::BandwidthConfig bc;
      for (int c = 0; c < cores; ++c) {
        hsw::StreamConfig stream;
        stream.core = c;
        stream.placement.owner_core = c;
        stream.placement.memory_node = 0;
        stream.placement.state = hsw::Mesif::kModified;
        stream.placement.level = hsw::CacheLevel::kMemory;
        bc.streams.push_back(stream);
      }
      bc.buffer_bytes = hsw::mib(2);
      bc.engine = engine;
      row.push_back(hsw::format_gbps(hsw::measure_bandwidth(sys, bc).total_gbps));
    }
    bw_table.add_row(std::move(row));
  }
  std::printf("\nLocal memory read bandwidth (Table VII), both engines:\n%s",
              bw_table.to_string().c_str());
  std::printf("\nPaper reference (Table VII): 11.2 GB/s for one core, "
              "saturating at ~63 GB/s\n");
  return 0;
}
