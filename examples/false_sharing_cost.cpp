// false_sharing_cost: what does a ping-ponging cache line cost?
//
// Two threads alternately write the same cache line — the classic false-
// sharing pattern.  Each write must pull the line out of the other core's
// L1 in Modified state (an RFO with a dirty core-to-core transfer), so the
// cost is dominated by exactly the transfer latencies the paper measures.
// The example sweeps the distance between the two threads: SMT-adjacent
// cores, same ring, other ring, other cluster (COD), other socket — and
// shows why thread placement matters more than almost any other fix.
//
// The second table replays the same contention concurrently through the
// exec engine (every core races for the line with overlapping requests)
// and contrasts it with the padded layout where each core owns its own
// line — the "fix" every performance guide recommends, quantified.
//
//   $ ./false_sharing_cost [--mode cod] [--iterations 2000]
#include <cstdio>
#include <string>

#include "core/hswbench.h"
#include "util/cli.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  std::string mode = "source";
  std::int64_t iterations = 2000;
  hsw::CommandLine cli("false_sharing_cost: ping-pong a line between cores");
  cli.add_string("mode", &mode, "snoop mode: source | home | cod");
  cli.add_int("iterations", &iterations, "write exchanges per pair");
  if (!cli.parse(argc, argv)) return 1;

  const auto parsed_mode = hsw::parse_snoop_mode(mode);
  if (!parsed_mode) {
    std::fprintf(stderr, "unknown --mode '%s' (source|home|cod)\n",
                 mode.c_str());
    return 1;
  }
  const hsw::SystemConfig config = hsw::SystemConfig::for_mode(*parsed_mode);

  hsw::System probe(config);
  const hsw::SystemTopology& topo = probe.topology();

  std::vector<std::pair<std::string, int>> partners;
  partners.emplace_back("neighbour core (same ring)", 1);
  partners.emplace_back("far core (same ring)", 5);
  if (topo.die(0).core_count() > 8) {
    partners.emplace_back("core on second ring", 9);
  }
  partners.emplace_back("core on second socket",
                        topo.global_core(1, 0));

  hsw::Table table({"partner of core 0", "ns per exchange",
                    "exchanges/s (million)"});
  for (const auto& [label, partner] : partners) {
    hsw::System system(config);
    const hsw::MemRegion region = system.alloc_on_node(0, 64);
    // Warm up ownership.
    system.write(0, region.base);

    double total_ns = 0.0;
    for (std::int64_t i = 0; i < iterations; ++i) {
      total_ns += system.write(partner, region.base).ns;  // steal the line
      total_ns += system.write(0, region.base).ns;        // steal it back
    }
    const double per_exchange = total_ns / (2.0 * static_cast<double>(iterations));
    table.add_row({label, hsw::cell(per_exchange, 1),
                   hsw::cell(1000.0 / per_exchange, 2)});
  }
  std::printf("machine: %s\n\n%s", config.describe().c_str(),
              table.to_string().c_str());
  std::printf(
      "\nEvery write invalidates the partner's copy and transfers the dirty\n"
      "line; contrast with ~%.1f ns for an uncontended L1 write.\n",
      probe.timing().l1_hit);

  // --- concurrent replay: shared line vs padded layout ----------------------
  // Four cores spread over both sockets hammer either one shared line
  // (false sharing) or one line each (padded).  The exec engine interleaves
  // their requests, so the cost of the ownership ping-pong shows up in the
  // makespan rather than in a serial latency sum.
  const std::vector<int> cores = {0, 1, topo.global_core(1, 0),
                                  topo.global_core(1, 1)};
  const int writes = static_cast<int>(iterations);

  hsw::Table contended({"layout", "mean write", "makespan", "aggregate"});
  for (const bool padded : {false, true}) {
    hsw::System system(config);
    const hsw::Trace trace =
        hsw::make_false_sharing_trace(system, cores, writes, padded);
    const hsw::exec::ProgramExecStats r =
        hsw::replay_concurrent(system, trace);
    contended.add_row({padded ? "padded (line per core)" : "shared line",
                       hsw::format_ns(r.mean_access_ns()),
                       hsw::format_ns(r.makespan_ns),
                       hsw::format_gbps(r.aggregate_gbps)});
  }
  std::printf("\n%d cores x %d concurrent writes (exec engine):\n%s", 4, writes,
              contended.to_string().c_str());
  return 0;
}
