// hswsim-submit: batch client for hswsim-serve.
//
// Reads ExperimentSpec JSON files, submits them as one batch over the
// daemon's unix socket, and prints a one-line summary per result:
//
//   hswsim-submit --socket /tmp/hswsim.sock fig8_local.json fig8_remote.json
//   result spec=0 cached=false key=... bytes=412
//   result spec=1 cached=true key=... bytes=398
//
// --payload-dir DIR writes each result's payload verbatim to
// DIR/result<i>.json (the byte-identity the cache guarantees makes these
// files diffable across runs); --stats-out FILE captures the server's cache
// stats dump for `hswsim-report cache`; --shutdown asks the daemon to exit
// after this request.  Exit 0 on success, 1 on any error event or
// transport failure.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/cli.h"
#include "util/json.h"

namespace {

bool send_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n =
        send(fd, text.data() + off, text.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads one newline-terminated event from the socket (buffered).
std::optional<std::string> read_line(int fd, std::string* buffer) {
  while (true) {
    const std::size_t nl = buffer->find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer->substr(0, nl);
      buffer->erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = read(fd, chunk, sizeof chunk);
    if (n <= 0) return std::nullopt;
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

// The payload is the last field of a result/stats event, so its verbatim
// bytes are the span between `"payload":` and the event's closing brace.
std::optional<std::string> payload_of(const std::string& event) {
  const std::size_t at = event.find("\"payload\":");
  if (at == std::string::npos || event.empty() || event.back() != '}') {
    return std::nullopt;
  }
  return event.substr(at + 10, event.size() - (at + 10) - 1);
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  return std::fclose(f) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string payload_dir;
  std::string stats_out;
  bool want_stats = false;
  bool want_shutdown = false;
  bool show_progress = false;

  hsw::CommandLine cli(
      "hswsim-submit: submit ExperimentSpec files to hswsim-serve as one "
      "batch.\nPositional arguments are spec JSON files (see "
      "src/core/experiment.h).");
  cli.add_string("socket", &socket_path, "daemon unix-domain socket path");
  cli.add_string("payload-dir", &payload_dir,
                 "write each result payload to <dir>/result<i>.json");
  cli.add_bool("stats", &want_stats, "request a cache stats snapshot");
  cli.add_string("stats-out", &stats_out,
                 "write the stats payload here (implies --stats)");
  cli.add_bool("shutdown", &want_shutdown, "ask the daemon to exit");
  cli.add_bool("progress", &show_progress,
               "forward progress events to stderr");
  cli.add_check([&]() -> std::optional<std::string> {
    if (socket_path.empty()) return "--socket is required";
    return std::nullopt;
  });
  switch (cli.parse_status(argc, argv)) {
    case hsw::CommandLine::ParseStatus::kOk: break;
    case hsw::CommandLine::ParseStatus::kHelp: return 0;
    case hsw::CommandLine::ParseStatus::kError: return 1;
  }
  if (!stats_out.empty()) want_stats = true;

  // Re-serialize every spec canonically: files may be pretty-printed, the
  // transport wants one line, and the server hashes the parsed document
  // anyway so the formatting round-trip cannot change the key.
  std::vector<std::string> specs;
  for (const std::string& path : cli.positional()) {
    std::string error;
    const auto spec = hsw::spec_from_file(path, &error);
    if (!spec) {
      std::fprintf(stderr, "hswsim-submit: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    specs.push_back(spec->canonical());
  }

  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("hswsim-submit: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("hswsim-submit: connect");
    close(fd);
    return 1;
  }

  int rc = 0;
  std::string buffer;
  auto fail = [&](const char* message) {
    std::fprintf(stderr, "hswsim-submit: %s\n", message);
    rc = 1;
  };

  if (!specs.empty()) {
    std::string request = "{\"op\":\"submit\",\"specs\":[";
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (i != 0) request += ",";
      request += specs[i];
    }
    request += "]}\n";
    if (!send_all(fd, request)) {
      fail("cannot send batch");
    }
    std::size_t results = 0;
    while (rc == 0 && results < specs.size()) {
      const auto line = read_line(fd, &buffer);
      if (!line) {
        fail("connection closed before all results arrived");
        break;
      }
      std::map<std::string, std::string> event;
      if (!hsw::json::parse_flat(*line, &event)) continue;
      const std::string kind = event.count("event") ? event["event"] : "";
      if (kind == "error") {
        std::fprintf(stderr, "hswsim-submit: server error: %s\n",
                     event["message"].c_str());
        rc = 1;
      } else if (kind == "progress") {
        if (show_progress) {
          std::fprintf(stderr, "progress spec=%s %s/%s\n",
                       event["spec"].c_str(), event["done"].c_str(),
                       event["total"].c_str());
        }
      } else if (kind == "result") {
        std::printf("result spec=%s cached=%s key=%s bytes=%s\n",
                    event["spec"].c_str(), event["cached"].c_str(),
                    event["key"].c_str(), event["bytes"].c_str());
        if (!payload_dir.empty()) {
          const auto payload = payload_of(*line);
          std::string path = payload_dir;
          path += "/result";
          path += event["spec"];
          path += ".json";
          if (!payload || !write_file(path, *payload)) {
            fail("cannot write result payload");
          }
        }
        ++results;
      }
    }
  }

  if (rc == 0 && want_stats) {
    if (!send_all(fd, "{\"op\":\"stats\"}\n")) fail("cannot send stats request");
    const auto line = rc == 0 ? read_line(fd, &buffer) : std::nullopt;
    if (rc == 0) {
      const auto payload = line ? payload_of(*line) : std::nullopt;
      if (!payload) {
        fail("no stats payload");
      } else if (!stats_out.empty()) {
        if (!write_file(stats_out, *payload)) fail("cannot write stats file");
      } else {
        std::printf("%s\n", payload->c_str());
      }
    }
  }

  if (want_shutdown) {
    if (!send_all(fd, "{\"op\":\"shutdown\"}\n")) {
      fail("cannot send shutdown");
    } else {
      // Wait for the acknowledgement so the daemon observed the request
      // before we report success.
      const auto line = read_line(fd, &buffer);
      if (!line || line->find("\"bye\"") == std::string::npos) {
        fail("no shutdown acknowledgement");
      }
    }
  }

  close(fd);
  return rc;
}
