// numa_tuning: should this workload enable Cluster-on-Die?
//
// Takes a workload description (how NUMA-local its memory accesses are, how
// much cross-thread sharing it does) and evaluates it under the three BIOS
// configurations, reporting the memory latencies/bandwidths the workload
// would see and a recommendation — the decision the paper's §IX guides
// administrators through.
//
//   $ ./numa_tuning --locality 0.9 --sharing 0.02
#include <cstdio>
#include <string>

#include "core/hswbench.h"
#include "util/cli.h"
#include "workload/apps.h"

int main(int argc, char** argv) {
  double locality = 0.9;
  double sharing = 0.02;
  double dram_fraction = 0.2;
  double bandwidth_bound = 0.5;
  hsw::CommandLine cli("numa_tuning: pick a coherence mode for a workload");
  cli.add_double("locality", &locality,
                 "fraction of DRAM accesses homed on the thread's own node");
  cli.add_double("sharing", &sharing,
                 "fraction of accesses to lines shared across nodes");
  cli.add_double("dram", &dram_fraction, "fraction of accesses going to DRAM");
  cli.add_double("bandwidth-bound", &bandwidth_bound,
                 "0 = latency bound, 1 = fully bandwidth bound");
  if (!cli.parse(argc, argv)) return 1;

  hsw::AppProfile profile;
  profile.name = "user workload";
  profile.suite = "custom";
  profile.compute_fraction = 0.4;
  profile.f_l2 = 0.1;
  profile.f_l3 = 0.1;
  profile.f_dram = dram_fraction;
  profile.numa_locality = locality;
  profile.sharing = sharing;
  profile.mlp = 4.0;
  profile.bandwidth_bound = bandwidth_bound;

  struct ModeRow {
    const char* label;
    hsw::SystemConfig config;
  };
  const ModeRow modes[] = {
      {"source snoop (default)", hsw::SystemConfig::source_snoop()},
      {"home snoop", hsw::SystemConfig::home_snoop()},
      {"cluster-on-die", hsw::SystemConfig::cluster_on_die()},
  };

  hsw::Table table({"configuration", "est. runtime", "vs default",
                    "memory ns/op", "sharing ns/op"});
  double baseline = 0.0;
  double best = 0.0;
  const char* best_label = modes[0].label;
  for (const ModeRow& mode : modes) {
    const hsw::AppRunResult r = hsw::estimate_runtime(profile, mode.config);
    if (baseline == 0.0) baseline = r.runtime;
    if (best == 0.0 || r.runtime < best) {
      best = r.runtime;
      best_label = mode.label;
    }
    char rel[32];
    std::snprintf(rel, sizeof rel, "%+.1f%%",
                  (r.runtime / baseline - 1.0) * 100.0);
    table.add_row({mode.label, hsw::cell(r.runtime, 1), rel,
                   hsw::cell(r.memory_time, 1), hsw::cell(r.sharing_time, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nrecommendation: %s\n", best_label);
  std::printf(
      "rule of thumb (paper §IX): COD helps NUMA-aware, latency-sensitive\n"
      "codes; heavy cross-node sharing suffers from its three-node\n"
      "transactions; home snoop buys cross-socket bandwidth at the cost of\n"
      "local memory latency.\n");
  return 0;
}
