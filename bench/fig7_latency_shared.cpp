// Fig. 7: COD-mode reads of lines that two cores have shared, as a function
// of data-set size — the experiment that exposes the HitME directory cache.
//
// Below the HitME capacity the home agent forwards the valid memory copy
// without snooping (REMOTE_DRAM dominates); beyond it the in-memory
// snoop-all state forces broadcasts and the forward-holder answers
// (REMOTE_FWD).  The paper identifies the AllocateShared policy from exactly
// this crossover.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv,
      "Fig. 7: node0 reads lines shared by two cores (COD, HitME effect)");
  std::vector<std::uint64_t> sizes =
      hsw::sweep_sizes(hsw::kib(16), args.quick ? hsw::mib(2) : hsw::mib(8));

  const hsw::SystemConfig config = hsw::SystemConfig::cluster_on_die();
  hsw::System probe(config);
  const hsw::SystemTopology& topo = probe.topology();

  struct Case {
    const char* name;
    int home_node;     // owner (shared copy) lives here
    int forward_node;  // reader that took the Forward copy
  };
  const Case cases[] = {
      {"H:n0 F:n1", 0, 1},  // home is the reader's node
      {"H:n1 F:n1", 1, 1},  // forward copy in the home node
      {"H:n1 F:n2", 1, 2},  // three-node transaction
      {"H:n2 F:n1", 2, 1},
  };

  hswbench::BenchTrace trace(args);
  std::vector<hswbench::Series> latency;
  std::vector<hswbench::Series> dram_fraction;
  for (const Case& c : cases) {
    hswbench::Series lat{c.name, {}};
    hswbench::Series dram{c.name, {}};
    for (std::uint64_t bytes : sizes) {
      hsw::System sys(config);
      hsw::LatencyConfig lc;
      lc.reader_core = 0;
      lc.placement.owner_core = topo.node(c.home_node).cores[1];
      lc.placement.memory_node = c.home_node;
      lc.placement.state = hsw::Mesif::kShared;
      lc.placement.sharers = {c.forward_node == c.home_node
                                  ? topo.node(c.forward_node).cores[2]
                                  : topo.node(c.forward_node).cores[1]};
      lc.placement.level = hsw::CacheLevel::kL3;
      lc.buffer_bytes = bytes;
      lc.max_measured_lines = 8192;
      lc.seed = args.seed;
      const hsw::LatencyResult r = trace.measure(
          sys, lc, std::string(c.name) + " @ " + hsw::format_bytes(bytes));
      lat.values.push_back(r.mean_ns);
      const double total = static_cast<double>(r.lines_measured);
      dram.values.push_back(
          100.0 *
          static_cast<double>(
              r.counters[static_cast<std::size_t>(hsw::Ctr::kLoadsRemoteDram)] +
              r.counters[static_cast<std::size_t>(hsw::Ctr::kLoadsLocalDram)]) /
          total);
    }
    latency.push_back(std::move(lat));
    dram_fraction.push_back(std::move(dram));
  }

  hswbench::print_sized_series(
      "Fig. 7: latency from node0, shared lines (COD)", sizes, latency,
      args.csv, "ns");
  hswbench::print_sized_series(
      "Fig. 7 (counters): percent of loads served by DRAM "
      "(MEM_LOAD_UOPS_L3_MISS_RETIRED:*_DRAM)",
      sizes, dram_fraction, args.csv.empty() ? "" : args.csv + ".dram.csv",
      "%");
  hswbench::print_paper_note(
      "for sets below ~256 KiB the HitME cache lets the home agent forward "
      "the memory copy (DRAM fraction ~100%, latency near the memory "
      "latency); above ~2.5 MiB broadcasts dominate and the F-holder "
      "forwards (162-177 ns for three-node cases)");
  trace.finish();
  return 0;
}
