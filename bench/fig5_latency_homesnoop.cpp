// Fig. 5: source snoop vs home snoop, cached data in state exclusive.
//
// The home snoop penalty appears exactly where the paper says: remote cache
// accesses (+10.5%) and local memory (+12%), while local caches and remote
// memory are unchanged.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Fig. 5: source snoop vs home snoop, exclusive lines");
  const std::vector<std::uint64_t> sizes =
      hswbench::figure_sizes(args, hsw::mib(64));

  std::vector<hswbench::LatencySeriesPlan> plans;
  for (auto [prefix, config] :
       {std::pair{"source", hsw::SystemConfig::source_snoop()},
        {"home", hsw::SystemConfig::home_snoop()}}) {
    for (auto [where, owner] : {std::pair{"local", 0}, {"socket2", 12}}) {
      hsw::LatencySweepConfig sc;
      sc.system = config;
      sc.reader_core = 0;
      sc.placement.owner_core = owner;
      sc.placement.memory_node = owner >= 12 ? 1 : 0;
      sc.placement.state = hsw::Mesif::kExclusive;
      sc.sizes = sizes;
      sc.max_measured_lines = 8192;
      sc.seed = args.seed;
      sc.sampling = args.sampling;
      plans.push_back({std::string(prefix) + " " + where, std::move(sc)});
    }
  }
  hswbench::BenchTrace trace(args);
  hswbench::extend_plans_for_trace(trace, plans);
  for (std::size_t p = 0; p < plans.size(); ++p) {
    plans[p].config.trace = trace.latency_plan_options(p);
  }

  const std::vector<std::vector<hsw::LatencyResult>> grid =
      hswbench::run_latency_grid(plans, args);
  hswbench::print_sized_series(
      "Fig. 5: read latency, source vs home snoop (state exclusive)", sizes,
      hswbench::mean_series(plans, grid), args.csv, "ns");
  hswbench::print_latency_percentiles(plans, sizes, grid);
  hswbench::print_paper_note(
      "remote L3: 104 -> 115 ns (+10.5%); local memory: 96.4 -> 108 ns "
      "(+12%); local caches and remote memory unchanged (146 ns)");
  hswbench::note_largest_size(trace, plans, sizes, grid);
  trace.finish();
  return 0;
}
