// Table VIII: memory read bandwidth scaling in COD mode, from node0 cores to
// each node's memory (1-6 cores: a COD node has six cores).
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Table VIII: COD memory bandwidth scaling");
  hswbench::BenchTrace trace(args);
  const hsw::SystemConfig config = hsw::SystemConfig::cluster_on_die();
  hsw::System probe(config);
  const hsw::SystemTopology& topo = probe.topology();

  const int max_cores = args.quick ? 3 : 6;
  std::vector<std::string> header{"source"};
  for (int c = 1; c <= max_cores; ++c) header.push_back(std::to_string(c));
  hsw::Table table(header);

  struct Row {
    std::string name;
    int reader_node;
    int memory_node;
  };
  const Row rows[] = {
      {"local memory", 0, 0},
      {"node0 -> node1", 0, 1},
      {"node0 -> node2", 0, 2},
      {"node0 -> node3", 0, 3},
      {"node1 -> node3", 1, 3},
  };
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.name};
    for (int c = 1; c <= max_cores; ++c) {
      hsw::System sys(config);
      hsw::BandwidthConfig bc;
      for (int i = 0; i < c; ++i) {
        hsw::StreamConfig stream;
        stream.core = topo.node(row.reader_node).cores[static_cast<std::size_t>(i)];
        stream.placement.owner_core = stream.core;
        stream.placement.memory_node = row.memory_node;
        stream.placement.state = hsw::Mesif::kModified;
        stream.placement.level = hsw::CacheLevel::kMemory;
        bc.streams.push_back(stream);
      }
      bc.buffer_bytes = hsw::mib(2);
      bc.seed = args.seed;
      bc.engine = args.engine;
      cells.push_back(hsw::cell(trace.measure_bw(sys, bc).total_gbps, 1));
    }
    table.add_row(std::move(cells));
  }

  hswbench::print_table("Table VIII: COD-mode memory read bandwidth (GB/s)",
                        table, args.csv);
  hswbench::print_paper_note(
      "local 12.6 -> 32.5 GB/s; node0->node1 7.0 -> 18.8 (inter-ring queue); "
      "node0->node2 5.9 -> 15.6; node0->node3 / node1->node3 5.5 -> 14.7 "
      "(stale-directory broadcasts keep QPI busy)");
  trace.finish();
  return 0;
}
