// Table I: comparison of the Sandy Bridge and Haswell micro-architectures.
#include <cstdio>
#include <string>

#include "common.h"
#include "machine/specs.h"

int main(int argc, char** argv) {
  const hswbench::BenchArgs args =
      hswbench::parse_args(argc, argv, "Table I: Sandy Bridge vs Haswell");
  hswbench::warn_untraced(args);
  const hsw::UarchSpec& snb = hsw::sandy_bridge_spec();
  const hsw::UarchSpec& hsx = hsw::haswell_spec();

  hsw::Table table({"micro-architecture", std::string(snb.name),
                    std::string(hsx.name)});
  auto row = [&](const char* label, auto snb_value, auto hsx_value) {
    table.add_row({label, std::string(snb_value), std::string(hsx_value)});
  };
  auto num = [](auto v) { return std::to_string(v); };

  row("decode", "4(+1) x86/cycle", "4(+1) x86/cycle");
  row("allocation queue", num(snb.allocation_queue) + "/thread",
      num(hsx.allocation_queue));
  row("execute", num(snb.execute_uops_per_cycle) + " micro-ops/cycle",
      num(hsx.execute_uops_per_cycle) + " micro-ops/cycle");
  row("retire", num(snb.retire_uops_per_cycle) + " micro-ops/cycle",
      num(hsx.retire_uops_per_cycle) + " micro-ops/cycle");
  row("scheduler entries", num(snb.scheduler_entries), num(hsx.scheduler_entries));
  row("ROB entries", num(snb.rob_entries), num(hsx.rob_entries));
  row("INT/FP registers", num(snb.int_registers) + "/" + num(snb.fp_registers),
      num(hsx.int_registers) + "/" + num(hsx.fp_registers));
  row("SIMD ISA", snb.simd_isa, hsx.simd_isa);
  row("FPU width", snb.fpu_width, hsx.fpu_width);
  row("FLOPS/cycle", num(snb.flops_per_cycle_sp) + " single / " +
      num(snb.flops_per_cycle_dp) + " double",
      num(hsx.flops_per_cycle_sp) + " single / " +
      num(hsx.flops_per_cycle_dp) + " double");
  row("load/store buffers", num(snb.load_buffers) + "/" + num(snb.store_buffers),
      num(hsx.load_buffers) + "/" + num(hsx.store_buffers));
  row("L1D accesses/cycle",
      "2x " + num(snb.l1_load_bytes_per_cycle) + " B load + 1x " +
      num(snb.l1_store_bytes_per_cycle) + " B store",
      "2x " + num(hsx.l1_load_bytes_per_cycle) + " B load + 1x " +
      num(hsx.l1_store_bytes_per_cycle) + " B store");
  row("L2 bytes/cycle", num(snb.l2_bytes_per_cycle), num(hsx.l2_bytes_per_cycle));
  row("memory channels", snb.memory_channels, hsx.memory_channels);
  row("QPI speed", hsw::cell(snb.qpi_speed_gts, 1) + " GT/s (" +
      hsw::cell(snb.qpi_bw_gbps, 1) + " GB/s)",
      hsw::cell(hsx.qpi_speed_gts, 1) + " GT/s (" +
      hsw::cell(hsx.qpi_bw_gbps, 1) + " GB/s)");

  hswbench::print_table("Table I: comparison of Sandy Bridge and Haswell",
                        table, args.csv);
  return 0;
}
