// Ablation: in-memory directory in a two-socket home-snoop system
// (DESIGN.md §5(3)).
//
// The paper infers that the directory is NOT active in the two-socket home
// snoop mode because the local memory latency rises by 12% — with a
// directory, remote-invalid lines would be served without waiting for the
// snoop response.  This bench builds both variants and shows the latency
// the real machine left on the table.
#include <cstdio>

#include "common.h"

namespace {

double local_memory_latency(hswbench::BenchTrace& trace, const char* label,
                            const hsw::SystemConfig& config,
                            std::uint64_t seed) {
  hsw::System sys(config);
  hsw::LatencyConfig lc;
  lc.reader_core = 0;
  lc.placement.owner_core = 0;
  lc.placement.memory_node = 0;
  lc.placement.state = hsw::Mesif::kModified;
  lc.placement.level = hsw::CacheLevel::kMemory;
  lc.buffer_bytes = hsw::mib(4);
  lc.max_measured_lines = 4096;
  lc.seed = seed;
  return trace.measure(sys, lc, label).mean_ns;
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Ablation: directory support in 2-socket home snoop");

  const hsw::SystemConfig source = hsw::SystemConfig::source_snoop();
  const hsw::SystemConfig home = hsw::SystemConfig::home_snoop();
  hsw::SystemConfig home_dir = hsw::SystemConfig::home_snoop();
  hsw::ProtocolFeatures features;
  features.directory = true;
  features.hitme = false;
  home_dir.feature_override = features;

  hswbench::BenchTrace trace(args);
  hsw::Table table({"configuration", "local memory latency"});
  table.add_row({"source snoop (default)",
                 hsw::format_ns(local_memory_latency(
                     trace, "source snoop", source, args.seed))});
  table.add_row({"home snoop, no directory (hardware)",
                 hsw::format_ns(local_memory_latency(
                     trace, "home snoop, no directory", home, args.seed))});
  table.add_row({"home snoop + directory (ablation)",
                 hsw::format_ns(local_memory_latency(
                     trace, "home snoop + directory", home_dir, args.seed))});
  hswbench::print_table(
      "Ablation: would a directory have saved the home-snoop local latency?",
      table, args.csv);
  hswbench::print_paper_note(
      "96.4 ns source snoop vs 108 ns home snoop (+12%); with a directory "
      "the remote-invalid fast path would have kept local memory at "
      "~source-snoop latency, which is how the paper concludes the "
      "directory is disabled on two-socket systems");
  trace.finish();
  return 0;
}
