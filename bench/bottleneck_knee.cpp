// Bottleneck knee: where bandwidth stops scaling, and *why*.
//
// Sweeps the number of concurrently reading cores at a fixed placement
// (memory-resident buffers on the remote node — the QPI-bound stream class
// of Table VII) under the simulated engine, with the per-resource queueing
// telemetry attached.  The claim being demonstrated: the core count where
// aggregate throughput stops growing (the knee) is exactly the core count
// where the first shared resource crosses saturation — bandwidth flattens
// *because* a FIFO server hit 100% busy, not by coincidence.  Checked for
// both snoop modes, which move the knee: source snoop's broadcast weight
// saturates QPI at ~half the core count home snoop needs.
//
// The bench gates itself: if the throughput knee and the first-saturation
// core count disagree in either mode, it exits 1 so CI catches the
// regression.  (validate_bw_model separately checks that the measured busy
// fractions agree with the analytic max-min utilization.)
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "obs/resource_stats.h"

namespace {

struct KneePoint {
  double total_gbps = 0.0;
  std::string top_resource;
  double top_utilization = 0.0;
};

// One (mode, cores) measurement: remote memory readers through
// measure_bandwidth with a fresh per-resource recorder on the closed loops.
KneePoint knee_point(const hsw::SystemConfig& config, int cores,
                     std::uint64_t seed) {
  hsw::System sys(config);
  hsw::obs::ResourceStatsRecorder recorder;
  hsw::BandwidthConfig bc;
  for (int c = 0; c < cores; ++c) {
    hsw::StreamConfig stream;
    stream.core = c;
    stream.placement.owner_core = c;
    stream.placement.memory_node = 1;  // fixed placement: remote memory
    stream.placement.state = hsw::Mesif::kModified;
    stream.placement.level = hsw::CacheLevel::kMemory;
    bc.streams.push_back(stream);
  }
  bc.buffer_bytes = hsw::mib(2);
  bc.seed = seed;
  bc.engine = hsw::BandwidthEngine::kSimulated;
  bc.instrumentation.resstats = &recorder;
  const double total = hsw::measure_bandwidth(sys, bc).total_gbps;

  hsw::obs::ResourceStatsHub hub;
  hub.absorb(std::move(recorder));
  const hsw::obs::MergedResourceStats merged = hub.merged();
  KneePoint point;
  point.total_gbps = total;
  for (std::size_t r = 0; r < merged.usage.size(); ++r) {
    if (merged.utilization(r) > point.top_utilization) {
      point.top_utilization = merged.utilization(r);
      point.top_resource = merged.names[r];
    }
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv,
      "Bottleneck knee: throughput scaling vs first resource saturation");
  hswbench::warn_untraced(args);

  // The knee must sit strictly inside the swept range for the gate to mean
  // anything; both modes' knees (QPI-bound: ~2 and ~4 cores) do.
  const int max_cores = args.quick ? 6 : 12;
  // A resource counts as saturated once its busy fraction reaches 95%; the
  // throughput knee is the first core count within 5% of the peak.  The
  // margins absorb closed-loop ramp/drain transients (~1% of the window).
  constexpr double kSaturated = 0.95;
  constexpr double kPeakFraction = 0.95;

  struct Mode {
    const char* name;
    hsw::SystemConfig config;
  };
  const Mode modes[] = {
      {"source snoop", hsw::SystemConfig::source_snoop()},
      {"home snoop", hsw::SystemConfig::home_snoop()},
  };

  hsw::Table table({"mode", "cores", "total GB/s", "bottleneck",
                    "utilization"});
  int failures = 0;
  for (const Mode& mode : modes) {
    std::vector<KneePoint> points;
    for (int c = 1; c <= max_cores; ++c) {
      points.push_back(knee_point(mode.config, c, args.seed));
      const KneePoint& p = points.back();
      table.add_row({mode.name, std::to_string(c), hsw::cell(p.total_gbps, 1),
                     p.top_resource, hsw::cell(p.top_utilization, 3)});
    }

    double peak = 0.0;
    for (const KneePoint& p : points) peak = std::max(peak, p.total_gbps);
    int knee_tp = 0;
    int knee_sat = 0;
    for (int c = 1; c <= max_cores; ++c) {
      const KneePoint& p = points[static_cast<std::size_t>(c - 1)];
      if (knee_tp == 0 && p.total_gbps >= kPeakFraction * peak) knee_tp = c;
      if (knee_sat == 0 && p.top_utilization >= kSaturated) knee_sat = c;
    }
    std::printf(
        "%s: throughput knee at %d cores, first saturated resource (%s) at "
        "%d cores\n",
        mode.name, knee_tp,
        knee_sat > 0
            ? points[static_cast<std::size_t>(knee_sat - 1)].top_resource
                  .c_str()
            : "none",
        knee_sat);
    if (knee_tp != knee_sat || knee_sat == 0) {
      std::fprintf(stderr,
                   "FAIL: %s knee (%d cores) does not coincide with first "
                   "saturation (%d cores)\n",
                   mode.name, knee_tp, knee_sat);
      ++failures;
    }
  }

  hswbench::print_table(
      "Bottleneck knee: remote-read scaling vs resource saturation", table,
      args.csv);
  hswbench::print_paper_note(
      "remote read saturates QPI: 16.8 GB/s under source snoop (broadcast "
      "weight 2.29) vs 30.6 GB/s under home snoop (weight 1.25) — the knee "
      "halves because the same link carries twice the protocol bytes");
  if (failures > 0) return 1;
  std::printf(
      "throughput knee coincides with first resource saturation in both "
      "modes\n");
  return 0;
}
