// Table V: COD-mode memory latency for lines that were shared by multiple
// cores and have since been (silently) evicted from every cache.
//
// Off the diagonal the in-memory directory is stale (snoop-all with no
// cached copy), so the home agent broadcasts a useless snoop before serving
// from memory — the paper measures +78..89 ns over the clean cases.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Table V: memory latency after sharing (stale directory)");
  const hsw::SystemConfig config = hsw::SystemConfig::cluster_on_die();
  hsw::System probe(config);
  const hsw::SystemTopology& topo = probe.topology();
  // The paper uses > 15 MiB sets so both the caches and the HitME entries
  // are gone; the same regime is reached with a smaller set and the L3
  // flush placement level plus a buffer well above the HitME coverage.
  const std::uint64_t buffer = args.quick ? hsw::mib(2) : hsw::mib(6);

  hswbench::BenchTrace trace(args);
  hsw::Table table(
      {"had forward copy", "H:node0", "H:node1", "H:node2", "H:node3"});
  hsw::Table rb_table(
      {"row-buffer hit %", "H:node0", "H:node1", "H:node2", "H:node3"});
  for (int f = 0; f < 4; ++f) {
    std::vector<std::string> row{"F:node" + std::to_string(f)};
    std::vector<std::string> rb_row{"F:node" + std::to_string(f)};
    for (int h = 0; h < 4; ++h) {
      hsw::System sys(config);
      hsw::LatencyConfig lc;
      lc.reader_core = 0;
      lc.placement.owner_core = topo.node(h).cores[1];
      lc.placement.memory_node = h;
      lc.placement.state = hsw::Mesif::kShared;
      const int forward_core = f == h ? topo.node(f).cores[2]
                                      : topo.node(f).cores[1];
      lc.placement.sharers = {forward_core};
      lc.placement.level = hsw::CacheLevel::kMemory;  // silent L3 eviction
      lc.buffer_bytes = buffer;
      lc.max_measured_lines = 4096;
      lc.seed = args.seed;
      const hsw::LatencyResult r = trace.measure(
          sys, lc, "F:node" + std::to_string(f) + " H:node" + std::to_string(h));
      row.push_back(hsw::cell(r.mean_ns, 1));

      // Row-buffer outcomes over the whole run (placement + measurement),
      // summed across every channel of this cell's fresh System.
      hsw::DramChannel::Stats rb;
      for (const auto& socket : sys.state().agents) {
        for (const hsw::HomeAgentState& agent : socket) {
          for (const hsw::DramChannel& channel : agent.channels) {
            rb.page_hits += channel.stats().page_hits;
            rb.page_empties += channel.stats().page_empties;
            rb.page_conflicts += channel.stats().page_conflicts;
          }
        }
      }
      rb_row.push_back(hsw::cell(100.0 * rb.hit_rate(), 1));
    }
    table.add_row(std::move(row));
    rb_table.add_row(std::move(rb_row));
  }

  hswbench::print_table(
      "Table V: memory latency (ns) from a node0 core after the lines were "
      "shared and then evicted (COD)",
      table, args.csv);
  hswbench::print_paper_note(
      "rows F:node0-3 x cols H:node0-3 =\n"
      "  [89.6 182  222  236 ]\n"
      "  [168  96.0 222  236 ]\n"
      "  [168  182  141  236 ]\n"
      "  [168  182  222  147 ]\n"
      "diagonal: sharing stayed inside the home node, directory still "
      "remote-invalid; everywhere else the stale snoop-all state adds the "
      "broadcast round trip");
  // Printed only (empty CSV path): the golden CSV schema stays untouched.
  hswbench::print_table(
      "DRAM row-buffer hit rate (%) per cell, all channels, placement + "
      "measurement",
      rb_table, "");
  std::printf("\n");
  trace.finish();
  return 0;
}
