// Validation of the set-sampling estimator (core/sampling.h).  Four layers:
//
//  1. Accuracy, latency: Fig. 4-style sweep points across the L3/memory
//     transition (the regime sampling is for, and where its error peaks)
//     measured exactly and at the sampled ratio.  Any point diverging more
//     than 2% fails the run.
//  2. Accuracy, bandwidth: the same check on Fig. 8-style stream classes.
//  3. Determinism: the sampled pass re-run with the same (ratio, seed) must
//     reproduce every value bit-for-bit — estimates are a pure function of
//     the configuration, never of scheduling.
//  4. The small-point floor: a point under SamplingConfig::min_sampled_bytes
//     must ignore the ratio entirely and match the exact run byte-for-byte
//     (the plan collapses to denominator 1).
//
// Exits 1 on any violation so scripts/check.sh catches estimator
// regressions.  --quick trims the size axis and series list for CI.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

namespace {

// One sweep point measured exactly and under sampling.
struct SampledPoint {
  std::string series;
  std::uint64_t bytes = 0;
  double exact = 0.0;
  double sampled = 0.0;

  [[nodiscard]] double divergence() const {
    return exact != 0.0 ? sampled / exact - 1.0 : 0.0;
  }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<hswbench::LatencySeriesPlan> latency_plans(
    const std::vector<std::uint64_t>& sizes, std::uint64_t seed,
    const hsw::SamplingConfig& sampling, bool quick) {
  std::vector<hswbench::LatencySeriesPlan> plans;
  auto sweep = [&](std::string name, int owner, int sharer,
                   hsw::Mesif state) {
    hsw::LatencySweepConfig sc;
    sc.system = hsw::SystemConfig::source_snoop();
    sc.reader_core = 0;
    sc.placement.owner_core = owner;
    sc.placement.memory_node = owner >= 12 ? 1 : 0;
    sc.placement.state = state;
    if (sharer >= 0) sc.placement.sharers = {sharer};
    sc.sizes = sizes;
    sc.max_measured_lines = 8192;
    sc.seed = seed;
    sc.sampling = sampling;
    plans.push_back({std::move(name), std::move(sc)});
  };
  sweep("local M", 0, -1, hsw::Mesif::kModified);
  sweep("socket2 S", 12, 13, hsw::Mesif::kShared);
  if (!quick) {
    sweep("node E", 1, -1, hsw::Mesif::kExclusive);
    sweep("node S", 1, 2, hsw::Mesif::kShared);
  }
  return plans;
}

std::vector<hswbench::BandwidthSeriesPlan> bandwidth_plans(
    const std::vector<std::uint64_t>& sizes, std::uint64_t seed,
    const hsw::SamplingConfig& sampling, bool quick) {
  std::vector<hswbench::BandwidthSeriesPlan> plans;
  auto sweep = [&](std::string name, int owner, hsw::Mesif state) {
    hsw::BandwidthSweepConfig sc;
    sc.system = hsw::SystemConfig::source_snoop();
    sc.stream.core = 0;
    sc.stream.width = hsw::bw::LoadWidth::kAvx256;
    sc.stream.placement.owner_core = owner;
    sc.stream.placement.memory_node = owner >= 12 ? 1 : 0;
    sc.stream.placement.state = state;
    sc.sizes = sizes;
    sc.seed = seed;
    sc.sampling = sampling;
    plans.push_back({std::move(name), std::move(sc)});
  };
  sweep("local M", 0, hsw::Mesif::kModified);
  sweep("socket2 M", 12, hsw::Mesif::kModified);
  if (!quick) sweep("node E", 1, hsw::Mesif::kExclusive);
  return plans;
}

// Zips an exact and a sampled series grid into comparable points.
std::vector<SampledPoint> zip_points(
    const std::vector<std::uint64_t>& sizes,
    const std::vector<hswbench::Series>& exact,
    const std::vector<hswbench::Series>& sampled, const char* kind) {
  std::vector<SampledPoint> points;
  for (std::size_t p = 0; p < exact.size(); ++p) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      SampledPoint point;
      point.series = std::string(kind) + " " + exact[p].name;
      point.bytes = sizes[i];
      point.exact = exact[p].values[i];
      point.sampled = sampled[p].values[i];
      points.push_back(std::move(point));
    }
  }
  return points;
}

// Reports every point beyond `tolerance`; returns the failure count.
int check_tolerance(const std::vector<SampledPoint>& points, double tolerance,
                    const char* unit) {
  int failures = 0;
  double worst = 0.0;
  const SampledPoint* worst_point = nullptr;
  for (const SampledPoint& point : points) {
    const double d = point.divergence();
    if (std::abs(d) > std::abs(worst)) {
      worst = d;
      worst_point = &point;
    }
    if (std::abs(d) > tolerance) {
      std::printf("DIVERGED %-20s @ %-8s exact %8.2f %s, sampled %8.2f %s "
                  "(%+.2f%%)\n",
                  point.series.c_str(), hsw::format_bytes(point.bytes).c_str(),
                  point.exact, unit, point.sampled, unit, 100.0 * d);
      ++failures;
    }
  }
  if (worst_point != nullptr) {
    std::printf("%zu points, worst divergence %+.2f%% at %s @ %s\n",
                points.size(), 100.0 * worst, worst_point->series.c_str(),
                hsw::format_bytes(worst_point->bytes).c_str());
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv,
      "Validation: set-sampled sweeps vs exact runs (accuracy, determinism, "
      "small-point floor)");
  hswbench::warn_untraced(args);

  // Validate the ratio the figure benches advertise unless the caller picked
  // another one.
  hsw::SamplingConfig sampling = args.sampling;
  if (!sampling.active()) sampling.ratio = 1.0 / 16.0;

  // The size axis spans the L3/memory transition — above the floor so every
  // point actually samples, and exactly the regime where per-set populations
  // are smallest relative to the transition sharpness.
  const std::vector<std::uint64_t> sizes =
      args.quick
          ? std::vector<std::uint64_t>{hsw::mib(16), hsw::mib(32), hsw::mib(64)}
          : hsw::sweep_sizes(hsw::mib(8), hsw::mib(64));
  constexpr double kTolerance = 0.02;

  std::printf("set-sampling validation: ratio %.4f (1/%llu), seed %llu, %zu "
              "sizes %s..%s\n\n",
              sampling.ratio,
              static_cast<unsigned long long>(sampling.requested_denominator()),
              static_cast<unsigned long long>(sampling.seed), sizes.size(),
              hsw::format_bytes(sizes.front()).c_str(),
              hsw::format_bytes(sizes.back()).c_str());

  const hsw::SamplingConfig exact;  // ratio 1

  // --- accuracy: latency ---------------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  const std::vector<hswbench::Series> lat_exact = hswbench::run_latency_series(
      latency_plans(sizes, args.seed, exact, args.quick), args.jobs);
  const double lat_exact_s = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  const std::vector<hswbench::Series> lat_sampled =
      hswbench::run_latency_series(
          latency_plans(sizes, args.seed, sampling, args.quick), args.jobs);
  const double lat_sampled_s = seconds_since(t0);
  int failures =
      check_tolerance(zip_points(sizes, lat_exact, lat_sampled, "latency"),
                      kTolerance, "ns");
  std::printf("latency pass: exact %.2fs, sampled %.2fs (%.1fx)\n\n",
              lat_exact_s, lat_sampled_s, lat_exact_s / lat_sampled_s);

  // --- accuracy: bandwidth -------------------------------------------------
  t0 = std::chrono::steady_clock::now();
  const std::vector<hswbench::Series> bw_exact = hswbench::run_bandwidth_series(
      bandwidth_plans(sizes, args.seed, exact, args.quick), args.jobs);
  const double bw_exact_s = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  const std::vector<hswbench::Series> bw_sampled =
      hswbench::run_bandwidth_series(
          bandwidth_plans(sizes, args.seed, sampling, args.quick), args.jobs);
  const double bw_sampled_s = seconds_since(t0);
  failures +=
      check_tolerance(zip_points(sizes, bw_exact, bw_sampled, "bandwidth"),
                      kTolerance, "GB/s");
  std::printf("bandwidth pass: exact %.2fs, sampled %.2fs (%.1fx)\n\n",
              bw_exact_s, bw_sampled_s, bw_exact_s / bw_sampled_s);

  // --- determinism: same (ratio, seed) => bit-identical --------------------
  const std::vector<hswbench::Series> lat_again = hswbench::run_latency_series(
      latency_plans(sizes, args.seed, sampling, args.quick), args.jobs);
  int nondeterministic = 0;
  for (std::size_t p = 0; p < lat_sampled.size(); ++p) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (lat_sampled[p].values[i] != lat_again[p].values[i]) {
        std::printf("NON-DETERMINISTIC %s @ %s: %.17g vs %.17g\n",
                    lat_sampled[p].name.c_str(),
                    hsw::format_bytes(sizes[i]).c_str(),
                    lat_sampled[p].values[i], lat_again[p].values[i]);
        ++nondeterministic;
      }
    }
  }
  std::printf("determinism: sampled pass re-run %s\n\n",
              nondeterministic == 0 ? "bit-identical" : "DIVERGED");
  failures += nondeterministic;

  // --- the floor: small points ignore the ratio ----------------------------
  {
    hsw::LatencySweepConfig sc =
        latency_plans({hsw::mib(1)}, args.seed, exact, true)[0].config;
    const hsw::LatencyResult exact_point =
        hsw::latency_sweep_point(sc, hsw::mib(1)).result;
    sc.sampling = sampling;
    const hsw::LatencyResult floored_point =
        hsw::latency_sweep_point(sc, hsw::mib(1)).result;
    const bool identical =
        exact_point.mean_ns == floored_point.mean_ns &&
        exact_point.counters == floored_point.counters;
    std::printf("floor: 1 MiB point under sampling %s the exact run\n",
                identical ? "matches" : "DIVERGED from");
    if (!identical) ++failures;
  }

  if (failures > 0) {
    std::fprintf(stderr, "\nFAIL: %d violation(s)\n", failures);
    return 1;
  }
  std::printf("\nall checks passed (tolerance %.0f%%)\n", 100.0 * kTolerance);
  return 0;
}
