// Fig. 10: coherence-protocol configuration vs application performance.
//
// The SPEC OMP2012 / SPEC MPI2007 suites are modelled by per-application
// memory profiles (workload/apps.h); each profile is evaluated under the
// three configurations and the runtime relative to the default (source
// snoop) is reported, like the paper's bars.
#include <cstdio>

#include "common.h"
#include "workload/apps.h"

int main(int argc, char** argv) {
  hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Fig. 10: application performance vs coherence mode");
  hswbench::warn_untraced(args);

  const hsw::SystemConfig source = hsw::SystemConfig::source_snoop();
  const hsw::SystemConfig home = hsw::SystemConfig::home_snoop();
  const hsw::SystemConfig cod = hsw::SystemConfig::cluster_on_die();

  std::unique_ptr<hsw::CsvWriter> csv;
  if (!args.csv.empty()) {
    csv = std::make_unique<hsw::CsvWriter>(
        args.csv,
        std::vector<std::string>{"suite", "app", "home_rel", "cod_rel"});
  }

  for (const auto* suite : {&hsw::spec_omp2012(), &hsw::spec_mpi2007()}) {
    const std::string suite_name = suite->front().suite;
    hsw::Table table({"application", "default", "Early Snoop off", "COD",
                      "home vs default", "COD vs default"});
    double worst_cod = 0.0;
    std::string worst_app;
    for (const hsw::AppProfile& app : *suite) {
      const double base = hsw::estimate_runtime(app, source).runtime;
      const double home_rt = hsw::estimate_runtime(app, home).runtime;
      const double cod_rt = hsw::estimate_runtime(app, cod).runtime;
      const double home_rel = home_rt / base;
      const double cod_rel = cod_rt / base;
      if (cod_rel > worst_cod) {
        worst_cod = cod_rel;
        worst_app = app.name;
      }
      char home_pct[32];
      char cod_pct[32];
      std::snprintf(home_pct, sizeof home_pct, "%+.1f%%", (home_rel - 1) * 100);
      std::snprintf(cod_pct, sizeof cod_pct, "%+.1f%%", (cod_rel - 1) * 100);
      table.add_row({app.name, hsw::cell(base, 1), hsw::cell(home_rt, 1),
                     hsw::cell(cod_rt, 1), home_pct, cod_pct});
      if (csv) {
        csv->add_row({suite_name, app.name, hsw::cell(home_rel, 4),
                      hsw::cell(cod_rel, 4)});
      }
    }
    std::printf("Fig. 10 (%s): estimated runtime per work unit, lower is "
                "better\n%s",
                suite_name.c_str(), table.to_string().c_str());
    std::printf("largest COD degradation: %s (%+.1f%%)\n\n", worst_app.c_str(),
                (worst_cod - 1) * 100);
  }

  hswbench::print_paper_note(
      "OMP2012: 12 of 14 apps within +/-2% under home snoop; 362.fma3d and "
      "371.applu331 ~5% faster with Early Snoop disabled; COD slows "
      "371.applu331 by up to 23% and helps no OMP app; MPI2007: home snoop "
      "slightly slower, COD mostly slightly faster (local-memory bound)");
  return 0;
}
