// Fig. 4: memory read latency in the default configuration (source snoop).
//
// Curves: the reading core's own hierarchy (local), cache lines of another
// core in the same NUMA node, and cache lines on the second processor —
// each for coherence states modified, exclusive, and shared.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Fig. 4: read latency vs data-set size, source snoop");
  const std::vector<std::uint64_t> sizes =
      hswbench::figure_sizes(args, hsw::mib(64));

  const hsw::SystemConfig config = hsw::SystemConfig::source_snoop();
  std::vector<hswbench::LatencySeriesPlan> plans;

  auto sweep = [&](std::string name, int reader, int owner, int sharer,
                   hsw::Mesif state) {
    hsw::LatencySweepConfig sc;
    sc.system = config;
    sc.reader_core = reader;
    sc.placement.owner_core = owner;
    sc.placement.memory_node = 0;
    sc.placement.state = state;
    if (sharer >= 0) sc.placement.sharers = {sharer};
    sc.sizes = sizes;
    sc.max_measured_lines = 8192;
    sc.seed = args.seed;
    sc.sampling = args.sampling;
    plans.push_back({std::move(name), std::move(sc)});
  };

  // Local hierarchy.
  sweep("local M", 0, 0, -1, hsw::Mesif::kModified);
  sweep("local E", 0, 0, -1, hsw::Mesif::kExclusive);
  // Within the NUMA node (owner core 1; shared with core 2).
  sweep("node M", 0, 1, -1, hsw::Mesif::kModified);
  sweep("node E", 0, 1, -1, hsw::Mesif::kExclusive);
  sweep("node S", 0, 1, 2, hsw::Mesif::kShared);
  // Other NUMA node / socket (owner core 12; shared with core 13).
  sweep("socket2 M", 0, 12, -1, hsw::Mesif::kModified);
  sweep("socket2 E", 0, 12, -1, hsw::Mesif::kExclusive);
  sweep("socket2 S", 0, 12, 13, hsw::Mesif::kShared);

  hswbench::BenchTrace trace(args);
  hswbench::extend_plans_for_trace(trace, plans);
  for (std::size_t p = 0; p < plans.size(); ++p) {
    plans[p].config.trace = trace.latency_plan_options(p);
  }

  const std::vector<std::vector<hsw::LatencyResult>> grid =
      hswbench::run_latency_grid(plans, args);
  hswbench::print_sized_series(
      "Fig. 4: memory read latency, default configuration (source snoop)",
      sizes, hswbench::mean_series(plans, grid), args.csv, "ns");
  hswbench::print_latency_percentiles(plans, sizes, grid);
  hswbench::print_paper_note(
      "L1 1.6 / L2 4.8 / L3 21.2 ns; node: M-in-cache 53 (L1) and 49 (L2), "
      "E-in-L3 44.4, S 21.2; socket2: M 113/109 (cache) 86 (L3), E 104, "
      "S 86; local memory 96.4, remote memory 146 ns");
  hswbench::note_largest_size(trace, plans, sizes, grid);
  trace.finish();
  return 0;
}
