// Ablation: what do the L3 core-valid bits cost and buy?
//
// DESIGN.md §5(1).  With CV bits, an E-state L3 hit placed by another core
// pays a core snoop (44.4 vs 21.2 ns) because exclusive lines are evicted
// silently.  Without CV bits the CA cannot locate a possibly-modified core
// copy at all — the model then serves stale-susceptible lines without the
// snoop, which shows exactly how much latency the bits cost in exchange for
// correctness.
#include <cstdio>

#include "common.h"

namespace {

double e_state_latency(hswbench::BenchTrace& trace, bool core_valid_bits,
                       std::uint64_t seed) {
  hsw::SystemConfig config = hsw::SystemConfig::source_snoop();
  hsw::ProtocolFeatures features;
  features.core_valid_bits = core_valid_bits;
  config.feature_override = features;
  hsw::System sys(config);

  hsw::LatencyConfig lc;
  lc.reader_core = 0;
  lc.placement.owner_core = 2;
  lc.placement.memory_node = 0;
  lc.placement.state = hsw::Mesif::kExclusive;
  lc.placement.level = hsw::CacheLevel::kL3;
  lc.buffer_bytes = hsw::kib(512);
  lc.max_measured_lines = 2048;
  lc.seed = seed;
  return trace
      .measure(sys, lc, core_valid_bits ? "E-in-L3, core-valid bits on"
                                        : "E-in-L3, core-valid bits off")
      .mean_ns;
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Ablation: core-valid bits and the E-state snoop penalty");

  hswbench::BenchTrace trace(args);
  const double with_cv = e_state_latency(trace, true, args.seed);
  const double without_cv = e_state_latency(trace, false, args.seed);

  hsw::Table table({"configuration", "E-in-L3 latency (other core placed)"});
  table.add_row({"core-valid bits on (hardware)", hsw::format_ns(with_cv)});
  table.add_row({"core-valid bits off (ablation)", hsw::format_ns(without_cv)});
  hswbench::print_table("Ablation: L3 core-valid bits", table, args.csv);
  std::printf(
      "\nsnoop penalty attributable to silently evicted exclusive lines: "
      "%.1f ns (paper: 44.4 - 21.2 = 23.2 ns)\n",
      with_cv - without_cv);
  trace.finish();
  return 0;
}
