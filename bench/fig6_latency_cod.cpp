// Fig. 6: read latency in Cluster-on-Die mode, by inter-node distance.
//
// COD doubles the number of distinct distances: local, within the node,
// the other on-chip cluster (1 hop on-chip), the directly connected remote
// node (1 hop QPI), and the 2- and 3-hop combinations.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Fig. 6: read latency vs size in COD mode");
  const std::vector<std::uint64_t> sizes =
      hswbench::figure_sizes(args, hsw::mib(32));

  const hsw::SystemConfig config = hsw::SystemConfig::cluster_on_die();
  hsw::System probe(config);
  const hsw::SystemTopology& topo = probe.topology();

  std::vector<hswbench::LatencySeriesPlan> plans;
  auto sweep = [&](std::string name, int reader, int owner_node,
                   hsw::Mesif state) {
    hsw::LatencySweepConfig sc;
    sc.system = config;
    sc.reader_core = reader;
    // First core of the owner node performs the placement (paper caption).
    sc.placement.owner_core = reader == topo.node(owner_node).cores[0]
                                  ? topo.node(owner_node).cores[1]
                                  : topo.node(owner_node).cores[0];
    sc.placement.memory_node = owner_node;
    sc.placement.state = state;
    sc.sizes = sizes;
    sc.max_measured_lines = 8192;
    sc.seed = args.seed;
    sc.sampling = args.sampling;
    plans.push_back({std::move(name), std::move(sc)});
  };

  for (hsw::Mesif state : {hsw::Mesif::kModified, hsw::Mesif::kExclusive}) {
    const char suffix = state == hsw::Mesif::kModified ? 'M' : 'E';
    auto title = [&](const char* base) {
      return std::string(base) + " " + suffix;
    };
    sweep(title("local"), 0, 0, state);                 // own node (reader 0)
    sweep(title("1hop-chip"), 0, 1, state);             // node0 -> node1
    sweep(title("1hop-qpi"), 0, 2, state);              // node0 -> node2
    sweep(title("2hops"), 0, 3, state);                 // node0 -> node3
    sweep(title("3hops"), topo.node(1).cores[0], 3, state);  // node1 -> node3
  }

  hswbench::BenchTrace trace(args);
  hswbench::extend_plans_for_trace(trace, plans);
  for (std::size_t p = 0; p < plans.size(); ++p) {
    plans[p].config.trace = trace.latency_plan_options(p);
  }

  const std::vector<std::vector<hsw::LatencyResult>> grid =
      hswbench::run_latency_grid(plans, args);
  hswbench::print_sized_series("Fig. 6: read latency in COD mode", sizes,
                               hswbench::mean_series(plans, grid), args.csv,
                               "ns");
  hswbench::print_latency_percentiles(plans, sizes, grid);
  hswbench::print_paper_note(
      "local L3 18.0 (M) / 37.2 (E); L3 of the 2nd on-chip node 57.2 / 73.6; "
      "remote L3 90/104 (1 hop), 96/111 (2 hops), 103/118 (3 hops); memory "
      "89.6 local, 96 on-chip, 141/147/153 ns remote by hop count");
  hswbench::note_largest_size(trace, plans, sizes, grid);
  trace.finish();
  return 0;
}
