// Cross-validation of the analytic (max-min fluid) bandwidth model against
// the event-driven engines.  Three layers:
//
//  1. Hand-built scenarios: fluid solver vs the bw/queueing simulator on
//     single-bottleneck flows (the original sanity check).
//  2. Fig. 8 quick sweep: measure_bandwidth with engine=analytic vs
//     engine=simulated on every (stream class, size) point.  The exec
//     engine's closed loops run the *same* flows over the *same* resource
//     capacities, so any divergence > 10% is a modelling bug — the bench
//     exits 1 so CI catches it.
//  3. Table VII core scaling under engine=simulated: aggregate bandwidth
//     must grow monotonically with the core count until the saturation
//     knee (queueing artefacts would show up as dips).  Also exits 1.
//
// Two independent formalisms agreeing is the evidence that the fluid
// model's saturation shapes are not artefacts.
#include <cmath>
#include <cstdio>

#include "bw/queueing.h"
#include "common.h"
#include "exec/engine.h"
#include "obs/resource_stats.h"

namespace {

struct Scenario {
  const char* name;
  int flows;
  double per_flow_demand;    // MLP-limited single-stream rate (GB/s)
  double base_latency_ns;    // uncontended round trip
  double capacity;           // shared bottleneck (GB/s)
  double weight;             // protocol bytes per payload byte
};

// One Fig. 8 sweep point measured under both engines.
struct EnginePoint {
  std::string series;
  std::uint64_t bytes = 0;
  double analytic = 0.0;
  double simulated = 0.0;

  [[nodiscard]] double divergence() const {
    return analytic > 0.0 ? simulated / analytic - 1.0 : 0.0;
  }
};

// Measures every (series, size) point of the Fig. 8 quick sweep under one
// engine.  Same plans as fig8_bandwidth_source --quick.
std::vector<EnginePoint> fig8_quick_sweep(hsw::BandwidthEngine engine,
                                          std::uint64_t seed, unsigned jobs) {
  const std::vector<std::uint64_t> sizes =
      hsw::sweep_sizes(hsw::kib(16), hsw::mib(4));
  std::vector<hswbench::BandwidthSeriesPlan> plans;
  auto sweep = [&](std::string name, int owner, hsw::Mesif state,
                   hsw::bw::LoadWidth width) {
    hsw::BandwidthSweepConfig sc;
    sc.system = hsw::SystemConfig::source_snoop();
    sc.stream.core = 0;
    sc.stream.width = width;
    sc.stream.placement.owner_core = owner;
    sc.stream.placement.memory_node = owner >= 12 ? 1 : 0;
    sc.stream.placement.state = state;
    sc.sizes = sizes;
    sc.seed = seed;
    sc.engine = engine;
    plans.push_back({std::move(name), std::move(sc)});
  };
  sweep("local M avx", 0, hsw::Mesif::kModified, hsw::bw::LoadWidth::kAvx256);
  sweep("local M sse", 0, hsw::Mesif::kModified, hsw::bw::LoadWidth::kSse128);
  sweep("node M", 1, hsw::Mesif::kModified, hsw::bw::LoadWidth::kAvx256);
  sweep("node E", 1, hsw::Mesif::kExclusive, hsw::bw::LoadWidth::kAvx256);
  sweep("socket2 M", 12, hsw::Mesif::kModified, hsw::bw::LoadWidth::kAvx256);
  sweep("socket2 E", 12, hsw::Mesif::kExclusive, hsw::bw::LoadWidth::kAvx256);

  const std::vector<hswbench::Series> series =
      hswbench::run_bandwidth_series(plans, jobs);
  std::vector<EnginePoint> points;
  for (std::size_t p = 0; p < series.size(); ++p) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      EnginePoint point;
      point.series = series[p].name;
      point.bytes = sizes[i];
      (engine == hsw::BandwidthEngine::kAnalytic ? point.analytic
                                                 : point.simulated) =
          series[p].values[i];
      points.push_back(std::move(point));
    }
  }
  return points;
}

// Table VII local-read scaling point under the simulated engine.
double simulated_scaling_point(int cores, std::uint64_t seed) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  hsw::BandwidthConfig bc;
  for (int c = 0; c < cores; ++c) {
    hsw::StreamConfig stream;
    stream.core = c;
    stream.placement.owner_core = c;
    stream.placement.memory_node = 0;
    stream.placement.state = hsw::Mesif::kModified;
    stream.placement.level = hsw::CacheLevel::kMemory;
    bc.streams.push_back(stream);
  }
  bc.buffer_bytes = hsw::mib(2);
  bc.seed = seed;
  bc.engine = hsw::BandwidthEngine::kSimulated;
  return hsw::measure_bandwidth(sys, bc).total_gbps;
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args =
      hswbench::parse_args(argc, argv,
                           "Cross-check: fluid max-min model vs event-driven "
                           "queueing simulation");
  hswbench::warn_untraced(args);

  const Scenario scenarios[] = {
      {"12 local readers vs DRAM (Table VII)", 12, 11.2, 96.4, 62.8, 1.0},
      {"6 local readers vs DRAM", 6, 11.2, 96.4, 62.8, 1.0},
      {"3 local readers (unsaturated)", 3, 11.2, 96.4, 62.8, 1.0},
      {"6 remote readers vs QPI, source snoop", 6, 8.4, 146.0, 38.4, 2.29},
      {"6 remote readers vs QPI, home snoop", 6, 8.4, 146.0, 38.4, 1.25},
      {"6 COD readers vs bridge (Table VIII)", 6, 6.2, 96.0, 18.8, 1.0},
  };

  hsw::Table table({"scenario", "fluid model", "queueing sim", "difference"});
  for (const Scenario& s : scenarios) {
    // Fluid model.
    std::vector<hsw::bw::Flow> flows(
        static_cast<std::size_t>(s.flows),
        hsw::bw::Flow{s.per_flow_demand, {{0, s.weight}}});
    const auto fluid_rates = hsw::bw::max_min_rates(flows, {s.capacity});
    double fluid = 0.0;
    for (double r : fluid_rates) fluid += r;

    // Queueing simulation: per-flow MLP chosen so the closed-loop unloaded
    // throughput equals the fluid demand: mlp = demand * latency / 64.
    hsw::bw::QueueFlow qf;
    qf.mlp = s.per_flow_demand * s.base_latency_ns / 64.0;
    qf.base_latency_ns = s.base_latency_ns;
    qf.visits = {{0, s.weight}};
    std::vector<hsw::bw::QueueFlow> qflows(
        static_cast<std::size_t>(s.flows), qf);
    hsw::bw::QueueingSimulator sim({s.capacity});
    const auto result = sim.run(qflows, 2e6);  // 2 ms window
    double des = 0.0;
    for (double r : result.gbps) des += r;

    char diff[32];
    std::snprintf(diff, sizeof diff, "%+.1f%%", (des / fluid - 1.0) * 100.0);
    table.add_row({s.name, hsw::format_gbps(fluid), hsw::format_gbps(des),
                   diff});
  }
  std::printf("Bandwidth-model cross-validation\n%s", table.to_string().c_str());
  std::printf(
      "\nThe two estimates should agree within a few percent: the fluid\n"
      "model is exact for saturated deterministic servers, and the closed-\n"
      "loop MLP limit reproduces the demand caps.\n");

  // --- engine=analytic vs engine=simulated on the Fig. 8 quick sweep -------
  constexpr double kTolerance = 0.10;
  std::vector<EnginePoint> points =
      fig8_quick_sweep(hsw::BandwidthEngine::kAnalytic, args.seed, args.jobs);
  const std::vector<EnginePoint> sim_points =
      fig8_quick_sweep(hsw::BandwidthEngine::kSimulated, args.seed, args.jobs);
  double worst = 0.0;
  const EnginePoint* worst_point = nullptr;
  int failures = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].simulated = sim_points[i].simulated;
    const double d = points[i].divergence();
    if (std::abs(d) > std::abs(worst)) {
      worst = d;
      worst_point = &points[i];
    }
    if (std::abs(d) > kTolerance) {
      std::printf("DIVERGED %-14s @ %-8s analytic %7.2f GB/s, simulated "
                  "%7.2f GB/s (%+.1f%%)\n",
                  points[i].series.c_str(),
                  hsw::format_bytes(points[i].bytes).c_str(),
                  points[i].analytic, points[i].simulated, 100.0 * d);
      ++failures;
    }
  }
  std::printf(
      "\nFig. 8 quick sweep, engine=analytic vs engine=simulated: %zu points, "
      "worst divergence %+.2f%%%s%s\n",
      points.size(), 100.0 * worst,
      worst_point != nullptr ? " at " : "",
      worst_point != nullptr
          ? (worst_point->series + " @ " + hsw::format_bytes(worst_point->bytes))
                .c_str()
          : "");
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d points diverged beyond %.0f%%\n", failures,
                 100.0 * kTolerance);
    return 1;
  }
  std::printf("all points within %.0f%%\n", 100.0 * kTolerance);

  // --- simulated Table VII scaling: monotone until the saturation knee -----
  const int max_cores = args.quick ? 6 : 12;
  std::vector<double> scaling;
  for (int c = 1; c <= max_cores; ++c) {
    scaling.push_back(simulated_scaling_point(c, args.seed));
  }
  double peak = 0.0;
  for (double v : scaling) peak = std::max(peak, v);
  bool monotone = true;
  std::printf("\nsimulated local-read scaling (GB/s):");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    std::printf(" %.1f", scaling[i]);
    // Before the knee (here: until within 2% of the peak) every added core
    // must raise the aggregate; past it, small queueing wiggle is fine.
    if (i > 0 && scaling[i - 1] < 0.98 * peak &&
        scaling[i] < scaling[i - 1] * (1.0 - 1e-9)) {
      monotone = false;
    }
  }
  std::printf("\n");
  if (!monotone) {
    std::fprintf(stderr,
                 "FAIL: simulated scaling is not monotone before the knee\n");
    return 1;
  }
  std::printf("scaling is monotone up to the saturation knee (peak %.1f GB/s)\n",
              peak);

  // --- measured busy fraction vs analytic max-min utilization --------------
  // The same flows once more, judged at the *resource* level: the analytic
  // utilization of every shared box (sum over flows of rate x weight,
  // divided by the box's capacity) must match the busy fraction the
  // per-resource telemetry measures on the closed loops.  This calibration
  // is what the bottleneck attribution and the bottleneck_knee golden rest
  // on: "measured utilization ~ 1.0" must mean the same thing in both
  // formalisms.
  constexpr double kUtilTolerance = 0.05;
  struct UtilCase {
    const char* name;
    int readers;
  };
  const UtilCase util_cases[] = {
      {"2 local readers (unsaturated)", 2},
      {"8 local readers (DRAM saturated)", 8},
  };
  hsw::System util_sys(hsw::SystemConfig::source_snoop());
  const hsw::bw::BandwidthModel util_model(util_sys);
  const std::vector<double>& caps = util_model.capacities();
  const std::vector<std::string> res_names =
      hsw::bw::resource_names(caps.size());
  int util_failures = 0;
  std::printf("\nper-resource utilization, analytic vs measured busy fraction\n");
  for (const UtilCase& uc : util_cases) {
    std::vector<hsw::bw::Flow> flows;
    std::vector<hsw::exec::StreamTask> tasks;
    for (int c = 0; c < uc.readers; ++c) {
      hsw::bw::StreamSpec spec;
      spec.core = c;
      spec.source = hsw::ServiceSource::kLocalDram;
      spec.source_node = 0;
      spec.home_node = 0;
      spec.latency_ns = 96.4;
      flows.push_back(util_model.flow_for(spec));
      hsw::exec::StreamTask task;
      task.core = c;
      task.demand_gbps = flows.back().demand;
      task.latency_ns = spec.latency_ns;
      task.path = flows.back().uses;
      tasks.push_back(std::move(task));
    }
    const std::vector<double> rates = hsw::bw::max_min_rates(flows, caps);
    std::vector<double> analytic_util(caps.size(), 0.0);
    for (std::size_t f = 0; f < flows.size(); ++f) {
      for (const hsw::bw::Flow::Use& use : flows[f].uses) {
        const auto r = static_cast<std::size_t>(use.resource);
        analytic_util[r] += rates[f] * use.weight / caps[r];
      }
    }

    hsw::obs::ResourceStatsRecorder recorder;
    hsw::exec::ClosedLoopConfig loop;
    loop.resstats = &recorder;
    hsw::exec::run_closed_loop(tasks, caps, loop);
    hsw::obs::ResourceStatsHub hub;
    hub.absorb(std::move(recorder));
    const hsw::obs::MergedResourceStats merged = hub.merged();

    for (std::size_t r = 0; r < caps.size(); ++r) {
      const double measured = merged.utilization(r);
      if (analytic_util[r] < 0.01 && measured < 0.01) continue;
      const double delta = measured - analytic_util[r];
      std::printf("  %-32s %-9s analytic %.3f  measured %.3f  (%+.3f)\n",
                  uc.name, res_names[r].c_str(), analytic_util[r], measured,
                  delta);
      if (std::abs(delta) > kUtilTolerance) ++util_failures;
    }
  }
  if (util_failures > 0) {
    std::fprintf(stderr,
                 "FAIL: %d resource(s) diverge beyond %.2f absolute "
                 "utilization\n",
                 util_failures, kUtilTolerance);
    return 1;
  }
  std::printf("all active resources within %.2f absolute utilization\n",
              kUtilTolerance);
  return 0;
}
