// Cross-validation of the analytic (max-min fluid) bandwidth model against
// the event-driven queueing simulator for the paper's aggregate-bandwidth
// scenarios (Tables VII/VIII).  Two independent formalisms agreeing is the
// evidence that the fluid model's saturation shapes are not artefacts.
#include <cstdio>

#include "bw/queueing.h"
#include "common.h"

namespace {

struct Scenario {
  const char* name;
  int flows;
  double per_flow_demand;    // MLP-limited single-stream rate (GB/s)
  double base_latency_ns;    // uncontended round trip
  double capacity;           // shared bottleneck (GB/s)
  double weight;             // protocol bytes per payload byte
};

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args =
      hswbench::parse_args(argc, argv,
                           "Cross-check: fluid max-min model vs event-driven "
                           "queueing simulation");
  hswbench::warn_untraced(args);

  const Scenario scenarios[] = {
      {"12 local readers vs DRAM (Table VII)", 12, 11.2, 96.4, 62.8, 1.0},
      {"6 local readers vs DRAM", 6, 11.2, 96.4, 62.8, 1.0},
      {"3 local readers (unsaturated)", 3, 11.2, 96.4, 62.8, 1.0},
      {"6 remote readers vs QPI, source snoop", 6, 8.4, 146.0, 38.4, 2.29},
      {"6 remote readers vs QPI, home snoop", 6, 8.4, 146.0, 38.4, 1.25},
      {"6 COD readers vs bridge (Table VIII)", 6, 6.2, 96.0, 18.8, 1.0},
  };

  hsw::Table table({"scenario", "fluid model", "queueing sim", "difference"});
  for (const Scenario& s : scenarios) {
    // Fluid model.
    std::vector<hsw::bw::Flow> flows(
        static_cast<std::size_t>(s.flows),
        hsw::bw::Flow{s.per_flow_demand, {{0, s.weight}}});
    const auto fluid_rates = hsw::bw::max_min_rates(flows, {s.capacity});
    double fluid = 0.0;
    for (double r : fluid_rates) fluid += r;

    // Queueing simulation: per-flow MLP chosen so the closed-loop unloaded
    // throughput equals the fluid demand: mlp = demand * latency / 64.
    hsw::bw::QueueFlow qf;
    qf.mlp = s.per_flow_demand * s.base_latency_ns / 64.0;
    qf.base_latency_ns = s.base_latency_ns;
    qf.visits = {{0, s.weight}};
    std::vector<hsw::bw::QueueFlow> qflows(
        static_cast<std::size_t>(s.flows), qf);
    hsw::bw::QueueingSimulator sim({s.capacity});
    const auto result = sim.run(qflows, 2e6);  // 2 ms window
    double des = 0.0;
    for (double r : result.gbps) des += r;

    char diff[32];
    std::snprintf(diff, sizeof diff, "%+.1f%%", (des / fluid - 1.0) * 100.0);
    table.add_row({s.name, hsw::format_gbps(fluid), hsw::format_gbps(des),
                   diff});
  }
  std::printf("Bandwidth-model cross-validation\n%s", table.to_string().c_str());
  std::printf(
      "\nThe two estimates should agree within a few percent: the fluid\n"
      "model is exact for saturated deterministic servers, and the closed-\n"
      "loop MLP limit reproduces the demand caps.\n");
  return 0;
}
