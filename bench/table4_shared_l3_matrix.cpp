// Table IV: COD-mode L3 latency from a core in node0 to shared lines, as a
// 4x4 matrix of (node holding the Forward copy) x (home node, which keeps a
// Shared copy).  Data-set size exceeds the HitME coverage, so the in-memory
// snoop-all state governs and three-node transactions appear off-diagonal.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  const hswbench::BenchArgs args =
      hswbench::parse_args(argc, argv, "Table IV: shared-line L3 latency (COD)");
  const hsw::SystemConfig config = hsw::SystemConfig::cluster_on_die();
  hsw::System probe(config);
  const hsw::SystemTopology& topo = probe.topology();
  const std::uint64_t buffer =
      args.quick ? hsw::mib(2) : hsw::mib(4);  // > 2.5 MiB regime

  hswbench::BenchTrace trace(args);
  hsw::Table table(
      {"forward copy", "H:node0", "H:node1", "H:node2", "H:node3"});
  for (int f = 0; f < 4; ++f) {
    std::vector<std::string> row{"F:node" + std::to_string(f)};
    for (int h = 0; h < 4; ++h) {
      hsw::System sys(config);
      hsw::LatencyConfig lc;
      lc.reader_core = 0;
      // The home-node core places the data (keeps the Shared copy), the
      // F-node core reads it last (takes Forward).
      lc.placement.owner_core = topo.node(h).cores[1];
      lc.placement.memory_node = h;
      lc.placement.state = hsw::Mesif::kShared;
      const int forward_core = f == h ? topo.node(f).cores[2]
                                      : topo.node(f).cores[1];
      lc.placement.sharers = {forward_core};
      lc.placement.level = hsw::CacheLevel::kL3;
      lc.buffer_bytes = buffer;
      lc.max_measured_lines = 4096;
      lc.seed = args.seed;
      const hsw::LatencyResult r = trace.measure(
          sys, lc, "F:node" + std::to_string(f) + " H:node" + std::to_string(h));
      row.push_back(hsw::cell(r.mean_ns, 1));
    }
    table.add_row(std::move(row));
  }

  hswbench::print_table(
      "Table IV: latency (ns) from a node0 core to L3 lines with multiple "
      "shared copies (COD, data sets > 2.5 MiB)",
      table, args.csv);
  hswbench::print_paper_note(
      "rows F:node0-3 x cols H:node0-3 =\n"
      "  [18.0 18.0 18.0 18.0]\n"
      "  [18.0 57.2 170  177 ]\n"
      "  [18.0 166  90.0 166 ]\n"
      "  [18.0 169  162  96.0]");
  trace.finish();
  return 0;
}
