// Ablation: the HitME directory cache (DESIGN.md §5(2)).
//
// Three COD variants: full (directory + HitME, the hardware), directory
// without HitME (classic DAS: clean forwards record `shared` in memory), and
// no directory at all (plain home snoop in a 4-node system).  Measured on
// the Fig. 7 workload (node0 reads lines shared between two other nodes) at
// a small size (HitME covers it) and a large size (it does not).
#include <cstdio>

#include "common.h"

namespace {

hsw::SystemConfig variant(bool directory, bool hitme) {
  hsw::SystemConfig config = hsw::SystemConfig::cluster_on_die();
  hsw::ProtocolFeatures features;
  features.directory = directory;
  features.hitme = hitme;
  config.feature_override = features;
  return config;
}

double shared_latency(hswbench::BenchTrace& trace, const std::string& label,
                      const hsw::SystemConfig& config, std::uint64_t bytes,
                      std::uint64_t seed) {
  hsw::System sys(config);
  const hsw::SystemTopology& topo = sys.topology();
  hsw::LatencyConfig lc;
  lc.reader_core = 0;
  lc.placement.owner_core = topo.node(1).cores[1];  // home: node1
  lc.placement.memory_node = 1;
  lc.placement.state = hsw::Mesif::kShared;
  lc.placement.sharers = {topo.node(2).cores[1]};   // forward copy: node2
  lc.placement.level = hsw::CacheLevel::kL3;
  lc.buffer_bytes = bytes;
  lc.max_measured_lines = 4096;
  lc.seed = seed;
  return trace.measure(sys, lc, label).mean_ns;
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args =
      hswbench::parse_args(argc, argv, "Ablation: HitME directory cache");
  hswbench::BenchTrace trace(args);

  hsw::Table table({"variant", "128 KiB shared set", "4 MiB shared set"});
  struct Variant {
    const char* name;
    hsw::SystemConfig config;
  };
  const Variant variants[] = {
      {"directory + HitME (hardware)", variant(true, true)},
      {"directory only (classic DAS)", variant(true, false)},
      {"no directory (snoop always)", variant(false, false)},
  };
  for (const Variant& v : variants) {
    table.add_row(
        {v.name,
         hsw::format_ns(shared_latency(trace, std::string(v.name) + " @ 128 KiB",
                                       v.config, hsw::kib(128), args.seed)),
         hsw::format_ns(shared_latency(trace, std::string(v.name) + " @ 4 MiB",
                                       v.config, hsw::mib(4), args.seed))});
  }
  hswbench::print_table("Ablation: HitME directory cache on the Fig. 7 workload",
                        table, args.csv);
  std::printf(
      "\nexpected: HitME serves small migratory sets from home memory (fast);"
      "\nbeyond its 256 KiB coverage the snoop-all broadcasts return; classic"
      "\nDAS keeps the memory fast-path at every size (its `shared` state is"
      "\nprecise) but gives up the migratory-line acceleration the HitME"
      "\ncache was built for; no directory broadcasts from the HA always.\n");
  trace.finish();
  return 0;
}
