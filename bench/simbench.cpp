// google-benchmark microbenchmarks of the simulator itself: throughput of
// the hot paths (cache hits, protocol transactions, placement).  These keep
// the engine fast enough for the full-figure sweeps.
#include <benchmark/benchmark.h>

#include "core/hswbench.h"

namespace {

void BM_L1Hit(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  const hsw::PhysAddr addr = sys.alloc_on_node(0, 64).base;
  sys.write(0, addr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.read(0, addr).ns);
  }
}
BENCHMARK(BM_L1Hit);

void BM_L3Hit(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  const hsw::MemRegion region = sys.alloc_on_node(0, hsw::mib(1));
  const auto order = hsw::chase_order(region, 1);
  for (hsw::LineAddr line : order) sys.write(0, hsw::addr_of(line));
  sys.evict_core_caches(0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.read(1, hsw::addr_of(order[i])).ns);
    i = (i + 1) % order.size();
  }
}
BENCHMARK(BM_L3Hit);

void BM_MemoryRead(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  const hsw::MemRegion region = sys.alloc_on_node(0, hsw::mib(64));
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sys.read(0, region.addr_at((line * 64) % region.bytes)).ns);
    line += 97;  // stride past the caches
  }
}
BENCHMARK(BM_MemoryRead);

void BM_CrossSocketTransfer(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  const hsw::PhysAddr addr = sys.alloc_on_node(0, 64).base;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.write(0, addr).ns);
    benchmark::DoNotOptimize(sys.write(12, addr).ns);
  }
}
BENCHMARK(BM_CrossSocketTransfer);

void BM_CodSharedBroadcast(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::cluster_on_die());
  const hsw::SystemTopology& topo = sys.topology();
  const hsw::PhysAddr addr = sys.alloc_on_node(1, 64).base;
  for (auto _ : state) {
    state.PauseTiming();
    sys.write(topo.node(1).cores[1], addr);
    sys.flush_line(addr);
    sys.read(topo.node(1).cores[1], addr);
    sys.read(topo.node(2).cores[1], addr);
    sys.evict_core_caches(topo.node(1).cores[1]);
    sys.evict_core_caches(topo.node(2).cores[1]);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sys.read(0, addr).ns);
  }
}
BENCHMARK(BM_CodSharedBroadcast);

void BM_Placement64KiB(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  for (auto _ : state) {
    const hsw::MemRegion region = sys.alloc_on_node(0, hsw::kib(64));
    hsw::Placement placement;
    placement.owner_core = 0;
    placement.memory_node = 0;
    placement.state = hsw::Mesif::kExclusive;
    hsw::place(sys, region, placement);
    benchmark::DoNotOptimize(region.base);
  }
}
BENCHMARK(BM_Placement64KiB);

}  // namespace

BENCHMARK_MAIN();
