// google-benchmark microbenchmarks of the simulator itself: throughput of
// the hot paths (cache hits, protocol transactions, placement).  These keep
// the engine fast enough for the full-figure sweeps.
//
// Unless --benchmark_out is given, results are also written as JSON to
// BENCH_simcore.json (per-benchmark ns/op) so successive PRs can diff the
// perf trajectory.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include <functional>
#include <queue>

#include "coh/protocol.h"
#include "core/hswbench.h"
#include "exec/engine.h"
#include "mem/cache_array.h"
#include "obs/line_stats.h"
#include "obs/resource_stats.h"
#include "sim/event_kernel.h"
#include "support/legacy_cache_array.h"
#include "trace/tracer.h"
#include "workload/trace.h"

namespace {

void BM_L1Hit(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  const hsw::PhysAddr addr = sys.alloc_on_node(0, 64).base;
  sys.write(0, addr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.read(0, addr).ns);
  }
}
BENCHMARK(BM_L1Hit);

void BM_L3Hit(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  const hsw::MemRegion region = sys.alloc_on_node(0, hsw::mib(1));
  const auto order = hsw::chase_order(region, 1);
  for (hsw::LineAddr line : order) sys.write(0, hsw::addr_of(line));
  sys.evict_core_caches(0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.read(1, hsw::addr_of(order[i])).ns);
    i = (i + 1) % order.size();
  }
}
BENCHMARK(BM_L3Hit);

void BM_MemoryRead(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  const hsw::MemRegion region = sys.alloc_on_node(0, hsw::mib(64));
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sys.read(0, region.addr_at((line * 64) % region.bytes)).ns);
    line += 97;  // stride past the caches
  }
}
BENCHMARK(BM_MemoryRead);

void BM_CrossSocketTransfer(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  const hsw::PhysAddr addr = sys.alloc_on_node(0, 64).base;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.write(0, addr).ns);
    benchmark::DoNotOptimize(sys.write(12, addr).ns);
  }
}
BENCHMARK(BM_CrossSocketTransfer);

void BM_CodSharedBroadcast(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::cluster_on_die());
  const hsw::SystemTopology& topo = sys.topology();
  const hsw::PhysAddr addr = sys.alloc_on_node(1, 64).base;
  for (auto _ : state) {
    state.PauseTiming();
    sys.write(topo.node(1).cores[1], addr);
    sys.flush_line(addr);
    sys.read(topo.node(1).cores[1], addr);
    sys.read(topo.node(2).cores[1], addr);
    sys.evict_core_caches(topo.node(1).cores[1]);
    sys.evict_core_caches(topo.node(2).cores[1]);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sys.read(0, addr).ns);
  }
}
BENCHMARK(BM_CodSharedBroadcast);

void BM_Placement64KiB(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  for (auto _ : state) {
    const hsw::MemRegion region = sys.alloc_on_node(0, hsw::kib(64));
    hsw::Placement placement;
    placement.owner_core = 0;
    placement.memory_node = 0;
    placement.state = hsw::Mesif::kExclusive;
    hsw::place(sys, region, placement);
    benchmark::DoNotOptimize(region.base);
  }
}
BENCHMARK(BM_Placement64KiB);

// --- Tracing overhead ----------------------------------------------------
//
// BM_L1Hit / BM_MemoryRead above ARE the disabled-tracing hot path: with no
// tracer attached every instrumentation site in the engine reduces to one
// null-pointer test.  The variants below attach a tracer so the cost of
// turning observability on is a recorded number, and the *TracingOff pair
// re-measures the null-tracer path in the same process so the off/on delta
// is visible in one BENCH_simcore.json.  scripts/check.sh guards the
// off-state lookup/insert numbers against the checked-in baseline.

void BM_L1HitTracingOff(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  sys.set_tracer(nullptr);  // explicit: the default, and the guarded path
  const hsw::PhysAddr addr = sys.alloc_on_node(0, 64).base;
  sys.write(0, addr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.read(0, addr).ns);
  }
}
BENCHMARK(BM_L1HitTracingOff);

void BM_L1HitAttribution(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  hsw::trace::Tracer tracer(hsw::trace::Tracer::Mode::kAttribution, 0, 0);
  sys.set_tracer(&tracer);
  const hsw::PhysAddr addr = sys.alloc_on_node(0, 64).base;
  sys.write(0, addr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.read(0, addr).ns);
  }
}
BENCHMARK(BM_L1HitAttribution);

void BM_MemoryReadTracingOff(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  sys.set_tracer(nullptr);
  const hsw::MemRegion region = sys.alloc_on_node(0, hsw::mib(64));
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sys.read(0, region.addr_at((line * 64) % region.bytes)).ns);
    line += 97;
  }
}
BENCHMARK(BM_MemoryReadTracingOff);

void BM_MemoryReadAttribution(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  hsw::trace::Tracer tracer(hsw::trace::Tracer::Mode::kAttribution, 0, 0);
  sys.set_tracer(&tracer);
  const hsw::MemRegion region = sys.alloc_on_node(0, hsw::mib(64));
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sys.read(0, region.addr_at((line * 64) % region.bytes)).ns);
    line += 97;
  }
}
BENCHMARK(BM_MemoryReadAttribution);

void BM_MemoryReadFullTrace(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  hsw::trace::Tracer tracer(hsw::trace::Tracer::Mode::kFull, 0, 4096);
  sys.set_tracer(&tracer);
  const hsw::MemRegion region = sys.alloc_on_node(0, hsw::mib(64));
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sys.read(0, region.addr_at((line * 64) % region.bytes)).ns);
    line += 97;
  }
}
BENCHMARK(BM_MemoryReadFullTrace);

// --- Metrics overhead ----------------------------------------------------
//
// Same story as the tracing pairs above, for the uncore-metrics registry:
// the *MetricsOff variants re-measure the detached path (one null-pointer
// test per instrumentation site) in the same process as the *MetricsOn
// variants, so the off/on delta lands in one BENCH_simcore.json.
// scripts/check.sh guards the off numbers against the checked-in baseline
// (the detached path must stay within noise of the pre-metrics engine).

void BM_L1HitMetricsOff(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  const hsw::PhysAddr addr = sys.alloc_on_node(0, 64).base;
  sys.write(0, addr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.read(0, addr).ns);
  }
}
BENCHMARK(BM_L1HitMetricsOff);

void BM_L1HitMetricsOn(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  hsw::metrics::MetricsRegistry registry(0, 0);  // no sampling: counter cost
  sys.attach_metrics(registry);
  const hsw::PhysAddr addr = sys.alloc_on_node(0, 64).base;
  sys.write(0, addr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.read(0, addr).ns);
  }
  sys.detach_metrics();
}
BENCHMARK(BM_L1HitMetricsOn);

void BM_MemoryReadMetricsOff(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  const hsw::MemRegion region = sys.alloc_on_node(0, hsw::mib(64));
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sys.read(0, region.addr_at((line * 64) % region.bytes)).ns);
    line += 97;
  }
}
BENCHMARK(BM_MemoryReadMetricsOff);

void BM_MemoryReadMetricsOn(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  hsw::metrics::MetricsRegistry registry(0, 0);
  sys.attach_metrics(registry);
  const hsw::MemRegion region = sys.alloc_on_node(0, hsw::mib(64));
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sys.read(0, region.addr_at((line * 64) % region.bytes)).ns);
    line += 97;
  }
  sys.detach_metrics();
}
BENCHMARK(BM_MemoryReadMetricsOn);

// --- Flight-recorder overhead --------------------------------------------
//
// Third verse, same as the first two: the *LineStatsOff variants re-measure
// the detached path (a null obs::LineStatsRecorder* per instrumentation
// site) in the same process as the *LineStatsOn variants.  scripts/check.sh
// guards the off numbers against the checked-in baseline and the on/off
// ratio, so attaching the per-line recorder stays a choice, not a tax.

void BM_L1HitLineStatsOff(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  const hsw::PhysAddr addr = sys.alloc_on_node(0, 64).base;
  sys.write(0, addr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.read(0, addr).ns);
  }
}
BENCHMARK(BM_L1HitLineStatsOff);

void BM_L1HitLineStatsOn(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  hsw::obs::LineStatsRecorder recorder(sys.config().protocol, 0);
  sys.attach_linestats(recorder);
  const hsw::PhysAddr addr = sys.alloc_on_node(0, 64).base;
  sys.write(0, addr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.read(0, addr).ns);
  }
  sys.detach_linestats();
}
BENCHMARK(BM_L1HitLineStatsOn);

void BM_MemoryReadLineStatsOff(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  const hsw::MemRegion region = sys.alloc_on_node(0, hsw::mib(64));
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sys.read(0, region.addr_at((line * 64) % region.bytes)).ns);
    line += 97;
  }
}
BENCHMARK(BM_MemoryReadLineStatsOff);

void BM_MemoryReadLineStatsOn(benchmark::State& state) {
  hsw::System sys(hsw::SystemConfig::source_snoop());
  hsw::obs::LineStatsRecorder recorder(sys.config().protocol, 0);
  sys.attach_linestats(recorder);
  const hsw::MemRegion region = sys.alloc_on_node(0, hsw::mib(64));
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sys.read(0, region.addr_at((line * 64) % region.bytes)).ns);
    line += 97;
  }
  sys.detach_linestats();
}
BENCHMARK(BM_MemoryReadLineStatsOn);

// --- CacheArray hot path (the inner loop of every simulated access) ------

// 256 KiB, 8-way: 512 sets x 8 ways = 4096 lines, filled completely so
// every lookup hits after a full-set tag scan.
constexpr std::uint64_t kArrayLines = 4096;

hsw::CacheArray filled_array(hsw::Replacement replacement) {
  hsw::CacheArray array(hsw::kib(256), 8, replacement);
  for (std::uint64_t line = 0; line < kArrayLines; ++line) {
    array.insert(line, hsw::Mesif::kExclusive);
  }
  return array;
}

void BM_CacheLookupHit(benchmark::State& state) {
  hsw::CacheArray array = filled_array(hsw::Replacement::kLru);
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.lookup(line));
    line = (line + 97) % kArrayLines;
  }
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheLookupMiss(benchmark::State& state) {
  hsw::CacheArray array = filled_array(hsw::Replacement::kLru);
  std::uint64_t line = kArrayLines;  // same sets, never-present tags
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.lookup(line));
    line = kArrayLines + (line + 97) % kArrayLines;
  }
}
BENCHMARK(BM_CacheLookupMiss);

void BM_CacheInsertEvict(benchmark::State& state) {
  hsw::CacheArray array = filled_array(hsw::Replacement::kLru);
  std::uint64_t line = kArrayLines;  // every insert evicts an LRU victim
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.insert(line++, hsw::Mesif::kModified));
  }
}
BENCHMARK(BM_CacheInsertEvict);

void BM_CacheInsertPlru(benchmark::State& state) {
  hsw::CacheArray array = filled_array(hsw::Replacement::kTreePlru);
  std::uint64_t line = kArrayLines;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.insert(line++, hsw::Mesif::kModified));
  }
}
BENCHMARK(BM_CacheInsertPlru);

// --- Fast-path pairs: current implementation vs the PR 5 one --------------
//
// The committed BENCH_simcore.json numbers move with the build host, so
// each optimized subsystem carries a frozen copy of its predecessor in the
// same binary: the AoS CacheArray (tests/support/legacy_cache_array.h), a
// replica of the std::function priority-queue event kernel, and the MESIF
// switch ladders.  Every *Legacy row divided by its partner row is a
// machine-independent speedup measurement — that is the number the
// EXPERIMENTS.md speedup table quotes.

hswtest::LegacyCacheArray filled_legacy_array(hsw::Replacement replacement) {
  hswtest::LegacyCacheArray array(hsw::kib(256), 8, replacement);
  for (std::uint64_t line = 0; line < kArrayLines; ++line) {
    array.insert(line, hsw::Mesif::kExclusive);
  }
  return array;
}

void BM_CacheLookupHitLegacy(benchmark::State& state) {
  hswtest::LegacyCacheArray array = filled_legacy_array(hsw::Replacement::kLru);
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.lookup(line));
    line = (line + 97) % kArrayLines;
  }
}
BENCHMARK(BM_CacheLookupHitLegacy);

void BM_CacheLookupMissLegacy(benchmark::State& state) {
  hswtest::LegacyCacheArray array = filled_legacy_array(hsw::Replacement::kLru);
  std::uint64_t line = kArrayLines;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.lookup(line));
    line = kArrayLines + (line + 97) % kArrayLines;
  }
}
BENCHMARK(BM_CacheLookupMissLegacy);

void BM_CacheInsertEvictLegacy(benchmark::State& state) {
  hswtest::LegacyCacheArray array = filled_legacy_array(hsw::Replacement::kLru);
  std::uint64_t line = kArrayLines;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.insert(line++, hsw::Mesif::kModified));
  }
}
BENCHMARK(BM_CacheInsertEvictLegacy);

void BM_CacheInsertPlruLegacy(benchmark::State& state) {
  hswtest::LegacyCacheArray array =
      filled_legacy_array(hsw::Replacement::kTreePlru);
  std::uint64_t line = kArrayLines;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.insert(line++, hsw::Mesif::kModified));
  }
}
BENCHMARK(BM_CacheInsertPlruLegacy);

// The PR 5 event kernel, frozen: std::function actions in a
// std::priority_queue, top() copied out per pop.
class LegacyEventQueue {
 public:
  using Action = std::function<void()>;

  void schedule_at(double when, std::int32_t key, Action action) {
    heap_.push(Event{when, key, next_seq_++, std::move(action)});
  }
  void schedule_after(double delay, std::int32_t key, Action action) {
    schedule_at(now_ + delay, key, std::move(action));
  }
  std::uint64_t run(std::uint64_t max_events) {
    std::uint64_t executed = 0;
    while (!heap_.empty() && executed < max_events) {
      Event event = heap_.top();  // the copy the rewrite removed
      heap_.pop();
      now_ = event.when;
      event.action();
      ++executed;
    }
    return executed;
  }
  [[nodiscard]] double now() const { return now_; }

 private:
  struct Event {
    double when;
    std::int32_t key;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

// The exec engine's steady-state pattern: a fixed population of flows, each
// completion advancing its resource stage and rescheduling; every third
// completion re-issues at now() (the same-timestamp bursts epoch batching
// exists for).
constexpr int kChurnFlows = 32;
constexpr std::size_t kChurnStages = 3;

double churn_delay(std::uint32_t flow) {
  return (flow % 3 == 0) ? 0.0 : 0.7 * static_cast<double>(flow % 5);
}

// What the PR 5 engine's advance() captured per scheduled event
// (exec/engine.cpp: `[&, p, flow, base_ns, stage]` with bw::Flow by value,
// uses-vector included).  Far over std::function's inline buffer, so every
// schedule allocated — and the priority_queue top() copy allocated again.
struct LegacyFlowCtx {
  std::vector<double> uses;
  std::uint32_t flow = 0;
  double base_ns = 0.0;
  std::size_t stage = 0;
};

void BM_EventKernelChurn(benchmark::State& state) {
  // Same simulated workload as the legacy pair below, restructured the way
  // the rewrite did: flow context lives in an indexed side table and the
  // event payload is a POD index into it.
  struct Ev {
    std::uint32_t flow;
  };
  std::vector<std::size_t> stage(kChurnFlows, 0);
  hsw::EventKernel<Ev> kernel;
  kernel.reserve(kChurnFlows * 2);
  for (std::uint32_t f = 0; f < kChurnFlows; ++f) {
    kernel.schedule_at(0.1 * f, static_cast<std::int32_t>(f), Ev{f});
  }
  auto dispatch = [&](const Ev& ev) {
    stage[ev.flow] = (stage[ev.flow] + 1) % kChurnStages;
    kernel.schedule_after(churn_delay(ev.flow),
                          static_cast<std::int32_t>(ev.flow), Ev{ev.flow});
  };
  for (auto _ : state) {
    kernel.run(dispatch, 64);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EventKernelChurn);

void BM_EventKernelChurnLegacy(benchmark::State& state) {
  LegacyEventQueue queue;
  std::function<void(const LegacyFlowCtx&)> advance =
      [&](const LegacyFlowCtx& ctx) {
        LegacyFlowCtx next = ctx;
        next.stage = (next.stage + 1) % next.uses.size();
        queue.schedule_after(churn_delay(ctx.flow),
                             static_cast<std::int32_t>(ctx.flow),
                             [&advance, next] { advance(next); });
      };
  for (std::uint32_t f = 0; f < kChurnFlows; ++f) {
    queue.schedule_at(
        0.1 * f, static_cast<std::int32_t>(f),
        [&advance, ctx = LegacyFlowCtx{{1.0, 0.7, 0.4}, f, 1.0, 0}] {
          advance(ctx);
        });
  }
  for (auto _ : state) {
    queue.run(64);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EventKernelChurnLegacy);

// MESIF transition: the indexed tables vs a replica of the PR 5 switch
// ladder (coh/protocol.h vs the branches it replaced).
hsw::Mesif ladder_next_state(hsw::Mesif state, hsw::protocol::Op op) {
  using hsw::Mesif;
  using hsw::protocol::Op;
  switch (op) {
    case Op::kLocalRead:
      return state;
    case Op::kLocalStore:
      switch (state) {
        case Mesif::kExclusive:
        case Mesif::kModified:
          return Mesif::kModified;
        default:
          return state;
      }
    case Op::kSnoopRead:
      switch (state) {
        case Mesif::kInvalid:
          return Mesif::kInvalid;
        default:
          return Mesif::kShared;
      }
    case Op::kSnoopInvalidate:
      return Mesif::kInvalid;
    case Op::kSnoopUpdate:
      // Not part of the frozen PR 5 ladder (update-based protocols came
      // later); the stream never generates it.
      return state;
  }
  return state;
}

// A deterministic pseudo-random (state, op) stream shared by both variants.
std::vector<std::pair<hsw::Mesif, hsw::protocol::Op>> transition_stream() {
  std::vector<std::pair<hsw::Mesif, hsw::protocol::Op>> stream;
  stream.reserve(4096);
  std::uint64_t x = 0x243f6a8885a308d3ull;
  for (int i = 0; i < 4096; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    stream.emplace_back(static_cast<hsw::Mesif>(x % 5),
                        static_cast<hsw::protocol::Op>((x >> 8) % 4));
  }
  return stream;
}

void BM_MesifTransitionTable(benchmark::State& state) {
  const auto stream = transition_stream();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, op] = stream[i];
    benchmark::DoNotOptimize(hsw::protocol::next_state(s, op));
    i = (i + 1) % stream.size();
  }
}
BENCHMARK(BM_MesifTransitionTable);

void BM_MesifTransitionLadder(benchmark::State& state) {
  const auto stream = transition_stream();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, op] = stream[i];
    benchmark::DoNotOptimize(ladder_next_state(s, op));
    i = (i + 1) % stream.size();
  }
}
BENCHMARK(BM_MesifTransitionLadder);

// Aggregate access path: one simulated access touches all three rewritten
// subsystems — a tag lookup, a MESIF transition on the hit, and an event
// pop + reschedule.  The pair measures the compounded speedup the tentpole
// claims; divide the Legacy row by this one.
void BM_AccessThroughput(benchmark::State& state) {
  hsw::CacheArray array = filled_array(hsw::Replacement::kLru);
  struct Ev {
    std::uint32_t flow;
  };
  std::vector<std::size_t> stage(kChurnFlows, 0);
  hsw::EventKernel<Ev> kernel;
  kernel.reserve(kChurnFlows * 2);
  for (std::uint32_t f = 0; f < kChurnFlows; ++f) {
    kernel.schedule_at(0.1 * f, static_cast<std::int32_t>(f), Ev{f});
  }
  auto dispatch = [&](const Ev& ev) {
    stage[ev.flow] = (stage[ev.flow] + 1) % kChurnStages;
    kernel.schedule_after(churn_delay(ev.flow),
                          static_cast<std::int32_t>(ev.flow), Ev{ev.flow});
  };
  std::uint64_t line = 0;
  for (auto _ : state) {
    hsw::CacheArray::Ref ref = array.lookup(line);
    ref.state() =
        hsw::protocol::next_state(ref.state(), hsw::protocol::Op::kLocalRead);
    kernel.run(dispatch, 1);
    line = (line + 97) % kArrayLines;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AccessThroughput);

void BM_AccessThroughputLegacy(benchmark::State& state) {
  hswtest::LegacyCacheArray array = filled_legacy_array(hsw::Replacement::kLru);
  LegacyEventQueue queue;
  std::function<void(const LegacyFlowCtx&)> advance =
      [&](const LegacyFlowCtx& ctx) {
        LegacyFlowCtx next = ctx;
        next.stage = (next.stage + 1) % next.uses.size();
        queue.schedule_after(churn_delay(ctx.flow),
                             static_cast<std::int32_t>(ctx.flow),
                             [&advance, next] { advance(next); });
      };
  for (std::uint32_t f = 0; f < kChurnFlows; ++f) {
    queue.schedule_at(
        0.1 * f, static_cast<std::int32_t>(f),
        [&advance, ctx = LegacyFlowCtx{{1.0, 0.7, 0.4}, f, 1.0, 0}] {
          advance(ctx);
        });
  }
  std::uint64_t line = 0;
  for (auto _ : state) {
    hsw::CacheEntry* entry = array.lookup(line);
    entry->state = ladder_next_state(entry->state, hsw::protocol::Op::kLocalRead);
    queue.run(1);
    line = (line + 97) % kArrayLines;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AccessThroughputLegacy);

void BM_CacheFillFlush(benchmark::State& state) {
  hsw::CacheArray array(hsw::kib(256), 8);
  for (auto _ : state) {
    for (std::uint64_t line = 0; line < kArrayLines; ++line) {
      array.insert(line, hsw::Mesif::kModified);
    }
    std::uint64_t evicted = 0;
    array.flush([&](const hsw::CacheEntry&) { ++evicted; });
    benchmark::DoNotOptimize(evicted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kArrayLines));
}
BENCHMARK(BM_CacheFillFlush);

// The one pattern where the striped layout pays instead of wins: a cold
// streaming fill writes six stripes where the AoS record wrote one or two
// cache lines.  Recorded so the tradeoff stays visible in the baseline.
void BM_CacheFillFlushLegacy(benchmark::State& state) {
  hswtest::LegacyCacheArray array(hsw::kib(256), 8);
  for (auto _ : state) {
    for (std::uint64_t line = 0; line < kArrayLines; ++line) {
      array.insert(line, hsw::Mesif::kModified);
    }
    std::uint64_t evicted = 0;
    array.flush([&](const hsw::CacheEntry&) { ++evicted; });
    benchmark::DoNotOptimize(evicted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kArrayLines));
}
BENCHMARK(BM_CacheFillFlushLegacy);

// --- Exec engine: the simulated bandwidth path and concurrent replay -----
//
// Analytic/simulated and serial/concurrent pairs, so BENCH_simcore.json
// records what switching a bandwidth point to the event-driven engine (or
// a replay to MLP-window interleaving) costs in simulator wall clock.

hsw::BandwidthConfig exec_bandwidth_point(hsw::BandwidthEngine engine) {
  hsw::BandwidthConfig bc;
  for (int c = 0; c < 4; ++c) {
    hsw::StreamConfig stream;
    stream.core = c;
    stream.placement.owner_core = c;
    stream.placement.memory_node = 0;
    stream.placement.state = hsw::Mesif::kModified;
    stream.placement.level = hsw::CacheLevel::kMemory;
    bc.streams.push_back(stream);
  }
  bc.buffer_bytes = hsw::mib(2);
  bc.engine = engine;
  return bc;
}

void BM_ExecEngineBandwidthAnalytic(benchmark::State& state) {
  const hsw::BandwidthConfig bc =
      exec_bandwidth_point(hsw::BandwidthEngine::kAnalytic);
  for (auto _ : state) {
    hsw::System system(hsw::SystemConfig::source_snoop());
    benchmark::DoNotOptimize(hsw::measure_bandwidth(system, bc).total_gbps);
  }
}
BENCHMARK(BM_ExecEngineBandwidthAnalytic)->Unit(benchmark::kMillisecond);

void BM_ExecEngineBandwidthSimulated(benchmark::State& state) {
  const hsw::BandwidthConfig bc =
      exec_bandwidth_point(hsw::BandwidthEngine::kSimulated);
  for (auto _ : state) {
    hsw::System system(hsw::SystemConfig::source_snoop());
    benchmark::DoNotOptimize(hsw::measure_bandwidth(system, bc).total_gbps);
  }
}
BENCHMARK(BM_ExecEngineBandwidthSimulated)->Unit(benchmark::kMillisecond);

// Fourth verse: the *ResStatsOff variant re-measures the detached path (a
// null obs::ResourceStatsRecorder* per closed-loop event) in the same
// process as the *ResStatsOn variant.  scripts/check.sh guards the off
// number against the checked-in baseline and the on/off ratio, so the
// per-resource queueing telemetry stays a choice, not a tax.

std::vector<hsw::exec::StreamTask> resstats_tasks() {
  std::vector<hsw::exec::StreamTask> tasks(4);
  for (std::size_t f = 0; f < tasks.size(); ++f) {
    tasks[f].core = static_cast<int>(f);
    tasks[f].demand_gbps = 8.0;
    tasks[f].latency_ns = 50.0;
    tasks[f].path = {{0, 1.0}};
  }
  return tasks;
}

void BM_ClosedLoopResStatsOff(benchmark::State& state) {
  const std::vector<hsw::exec::StreamTask> tasks = resstats_tasks();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hsw::exec::run_closed_loop(tasks, {10.0}).total_gbps);
  }
}
BENCHMARK(BM_ClosedLoopResStatsOff)->Unit(benchmark::kMillisecond);

void BM_ClosedLoopResStatsOn(benchmark::State& state) {
  const std::vector<hsw::exec::StreamTask> tasks = resstats_tasks();
  for (auto _ : state) {
    // One recorder serves one run, so it is (deliberately) rebuilt per
    // iteration: the attach cost is part of what the pair measures.
    hsw::obs::ResourceStatsRecorder recorder;
    hsw::exec::ClosedLoopConfig config;
    config.resstats = &recorder;
    benchmark::DoNotOptimize(
        hsw::exec::run_closed_loop(tasks, {10.0}, config).total_gbps);
  }
}
BENCHMARK(BM_ClosedLoopResStatsOn)->Unit(benchmark::kMillisecond);

hsw::Trace exec_replay_trace(hsw::System& system) {
  return hsw::make_hotset_trace(system, {0, 1, 12, 13}, 64, 20000, 0.3, 1);
}

void BM_ExecEngineReplaySerial(benchmark::State& state) {
  for (auto _ : state) {
    hsw::System system(hsw::SystemConfig::source_snoop());
    const hsw::Trace trace = exec_replay_trace(system);
    benchmark::DoNotOptimize(hsw::replay(system, trace).events);
  }
}
BENCHMARK(BM_ExecEngineReplaySerial)->Unit(benchmark::kMillisecond);

void BM_ExecEngineReplayConcurrent(benchmark::State& state) {
  for (auto _ : state) {
    hsw::System system(hsw::SystemConfig::source_snoop());
    const hsw::Trace trace = exec_replay_trace(system);
    benchmark::DoNotOptimize(
        hsw::replay_concurrent(system, trace).accesses);
  }
}
BENCHMARK(BM_ExecEngineReplayConcurrent)->Unit(benchmark::kMillisecond);

// --- Whole-sweep wall clock (the harness's end-to-end unit of work) ------

void BM_LatencySweepWallClock(benchmark::State& state) {
  hsw::LatencySweepConfig config;
  config.system = hsw::SystemConfig::source_snoop();
  config.reader_core = 0;
  config.placement.owner_core = 1;
  config.placement.state = hsw::Mesif::kModified;
  config.sizes = hsw::sweep_sizes(hsw::kib(16), hsw::mib(2));
  config.max_measured_lines = 2048;
  config.jobs = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsw::latency_sweep(config).size());
  }
}
BENCHMARK(BM_LatencySweepWallClock)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

// BENCHMARK_MAIN, plus a default JSON dump to BENCH_simcore.json so the
// perf numbers of every PR land in a diffable artifact.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out")) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_simcore.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
