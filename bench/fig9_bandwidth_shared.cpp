// Fig. 9: single-threaded read bandwidth of *shared* cache lines.
//
// The headline effect: local L1/L2 bandwidth collapses to L3 bandwidth when
// the Forward copy lives on the other socket, because every access notifies
// the CA to reclaim the forward state.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Fig. 9: read bandwidth of shared lines, source snoop");
  const std::vector<std::uint64_t> sizes =
      hswbench::figure_sizes(args, hsw::mib(64));
  const hsw::SystemConfig config = hsw::SystemConfig::source_snoop();

  std::vector<hswbench::BandwidthSeriesPlan> plans;
  auto sweep = [&](std::string name, int owner, int node,
                   std::vector<int> sharers) {
    hsw::BandwidthSweepConfig sc;
    sc.system = config;
    sc.stream.core = 0;
    sc.stream.placement.owner_core = owner;
    sc.stream.placement.memory_node = node;
    sc.stream.placement.state = hsw::Mesif::kShared;
    sc.stream.placement.sharers = std::move(sharers);
    sc.sizes = sizes;
    sc.seed = args.seed;
    sc.sampling = args.sampling;
    sc.engine = args.engine;
    plans.push_back({std::move(name), std::move(sc)});
  };

  // Reader 0 shares with core 2; the node keeps its exclusivity: full speed.
  sweep("F in own node", 1, 0, {0, 2});
  // Socket 1 read last and took the Forward copy; reader 0 holds S.
  sweep("F in other socket", 1, 0, {0, 12});
  // Data shared only within the other socket; reader 0 holds nothing.
  sweep("S in remote L3", 12, 1, {13});

  hswbench::BenchTrace trace(args);
  for (std::size_t p = 0; p < plans.size(); ++p) {
    plans[p].config.trace = trace.bandwidth_plan_options(p);
  }

  const std::vector<hswbench::Series> series =
      hswbench::run_bandwidth_series(plans, args);
  hswbench::print_sized_series(
      "Fig. 9: single-threaded read bandwidth, shared lines", sizes, series,
      args.csv, "GB/s");
  hswbench::print_paper_note(
      "with F in the own node: full L1/L2 speed (127.2 / 69.1 GB/s); with F "
      "on the other socket: limited to the 26.2 GB/s L3 bandwidth even for "
      "L1-resident sets; shared remote L3: 9.1 GB/s");
  trace.finish();
  return 0;
}
