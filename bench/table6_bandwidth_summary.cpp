// Table VI: single-threaded read bandwidth across the three configurations
// (L3 values for state exclusive).
#include <cstdio>

#include "common.h"

namespace {

double stream_bw(hswbench::BenchTrace& trace, const hsw::SystemConfig& config,
                 int reader, int owner, int node, hsw::Mesif state,
                 hsw::CacheLevel level, std::uint64_t bytes,
                 std::uint64_t seed, hsw::BandwidthEngine engine) {
  hsw::System sys(config);
  hsw::BandwidthConfig bc;
  hsw::StreamConfig stream;
  stream.core = reader;
  stream.placement.owner_core = owner;
  stream.placement.memory_node = node;
  stream.placement.state = state;
  stream.placement.level = level;
  bc.streams = {stream};
  bc.buffer_bytes = bytes;
  bc.seed = seed;
  bc.engine = engine;
  // Table VI measures fresh buffers (clean directory state), unlike the
  // streaming loops of Tables VII/VIII.
  bc.steady_state = false;
  return trace.measure_bw(sys, bc).total_gbps;
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Table VI: single-threaded read bandwidth summary");
  const std::uint64_t seed = args.seed;
  hswbench::BenchTrace trace(args);

  const hsw::SystemConfig source = hsw::SystemConfig::source_snoop();
  const hsw::SystemConfig home = hsw::SystemConfig::home_snoop();
  const hsw::SystemConfig cod = hsw::SystemConfig::cluster_on_die();
  hsw::System probe(cod);
  const hsw::SystemTopology& topo = probe.topology();

  struct Group {
    int reader;
    int local_node;
  };
  const Group groups[] = {{0, 0}, {6, 1}, {8, 1}};

  auto l3 = [&](const hsw::SystemConfig& c, int reader, int owner, int node) {
    return stream_bw(trace, c, reader, owner, node, hsw::Mesif::kExclusive,
                     hsw::CacheLevel::kL3, hsw::kib(512), seed, args.engine);
  };
  auto mem = [&](const hsw::SystemConfig& c, int reader, int node) {
    return stream_bw(trace, c, reader, reader, node, hsw::Mesif::kModified,
                     hsw::CacheLevel::kMemory, hsw::mib(4), seed, args.engine);
  };
  auto fmt = [](double v) { return hsw::cell(v, 1); };

  hsw::Table table({"", "source", "default", "Early Snoop off",
                    "COD 1st node", "COD 2nd/ring0", "COD 2nd/ring1"});
  {
    std::vector<std::string> row{"L3", "local",
                                 fmt(l3(source, 0, 0, 0)),
                                 fmt(l3(home, 0, 0, 0))};
    for (const Group& g : groups) {
      row.push_back(fmt(l3(cod, g.reader, g.reader, g.local_node)));
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"L3", "remote 1st node",
                                 fmt(l3(source, 0, 12, 1)),
                                 fmt(l3(home, 0, 12, 1))};
    for (const Group& g : groups) {
      row.push_back(fmt(l3(cod, g.reader, topo.node(2).cores[0], 2)));
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"L3", "remote 2nd node", "", ""};
    for (const Group& g : groups) {
      row.push_back(fmt(l3(cod, g.reader, topo.node(3).cores[0], 3)));
    }
    table.add_row(std::move(row));
  }
  table.add_separator();
  {
    std::vector<std::string> row{"memory", "local", fmt(mem(source, 0, 0)),
                                 fmt(mem(home, 0, 0))};
    for (const Group& g : groups) {
      row.push_back(fmt(mem(cod, g.reader, g.local_node)));
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"memory", "remote 1st node",
                                 fmt(mem(source, 0, 1)), fmt(mem(home, 0, 1))};
    for (const Group& g : groups) {
      row.push_back(fmt(mem(cod, g.reader, 2)));
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"memory", "remote 2nd node", "", ""};
    for (const Group& g : groups) {
      row.push_back(fmt(mem(cod, g.reader, 3)));
    }
    table.add_row(std::move(row));
  }

  hswbench::print_table(
      "Table VI: single-threaded read bandwidth in GB/s (L3 rows: state E)",
      table, args.csv);
  hswbench::print_paper_note(
      "L3 local 26.2 | 26.2 | 29.0 | 27.2 | 27.6;  L3 remote 8.8 | 8.9 | "
      "8.7/8.3 | 8.3/8.0 | 8.4/8.1;  memory local 10.3 | 9.5 | 12.6 | 12.4 | "
      "12.6;  memory remote 8.0 | 8.2 | 8.3/8.0 | 7.8/7.4 | 8.1/7.5");
  trace.finish();
  return 0;
}
