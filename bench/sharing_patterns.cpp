// Sharing-pattern matrix: the flight recorder's behaviour gate.
//
// Replays the three contention traces (mailbox ping-pong, contended lock,
// false sharing) under every coherence-protocol family with the per-line
// flight recorder attached, and prints per (protocol x scenario) what the
// recorder saw of the hottest line: its classified sharing pattern, the
// contention counters, the transition-matrix cells where the families
// differ by design, and the per-state residency.
//
// What the matrix must show (asserted below, so the golden cannot silently
// drift away from the story):
//   - the classifier names each generator's pattern on all four families:
//     pingpong -> ping_pong, lock -> migratory, false sharing ->
//     false_shared (the protocol changes the cost, not the access shape);
//   - MOESI's read snoops demote M -> Owned (nonzero Owned residency and
//     M.SnoopRead.O cells) where MESIF demotes M -> S with an eager memory
//     writeback (M.SnoopRead.S) and never touches Owned;
//   - Dragon's update broadcasts keep reader copies alive: nonzero update
//     counts on the contended line and no invalidations, where MESIF pays
//     an invalidation per ownership handoff and never updates.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "obs/line_stats.h"
#include "sim/thread_pool.h"
#include "workload/trace.h"

namespace {

struct Cell {
  hsw::obs::SharingPattern pattern = hsw::obs::SharingPattern::kPrivate;
  hsw::obs::LineRecord top;     // hottest line's record
  // Owner-demotion cells of the L3 transition matrix: a read snoop hits a
  // node that holds the line E or M (the L3 may record E while the dirty
  // copy sits in a core — the from-state is the pre-snoop L3 state).
  // MESIF/MESI demote to S with an eager memory writeback; MOESI defers it
  // via Owned.
  std::uint64_t snoop_to_s = 0;  // L3 {E,M} --SnoopRead--> S
  std::uint64_t snoop_to_o = 0;  // L3 {E,M} --SnoopRead--> O
};

constexpr hsw::Protocol kProtocols[] = {
    hsw::Protocol::kMesif, hsw::Protocol::kMesi, hsw::Protocol::kMoesi,
    hsw::Protocol::kDragon};

struct Scenario {
  const char* name;
  hsw::obs::SharingPattern expected;
  hsw::Trace (*make)(hsw::System&, int rounds);
};

// Cross-socket sharing set, same shape as protocol_matrix: half the cores
// from each socket so every handoff crosses QPI.
std::vector<int> sharing_cores(const hsw::System& system) {
  const int far = system.core_count() / 2;
  return {0, 1, 2, 3, far, far + 1, far + 2, far + 3};
}

hsw::Trace make_pingpong(hsw::System& system, int rounds) {
  return hsw::make_pingpong_trace(system, 0, system.core_count() / 2, rounds);
}

hsw::Trace make_lock(hsw::System& system, int rounds) {
  return hsw::make_lock_trace(system, sharing_cores(system), 4, rounds, 1);
}

hsw::Trace make_false_sharing(hsw::System& system, int rounds) {
  return hsw::make_false_sharing_trace(system, sharing_cores(system), rounds,
                                       /*padded=*/false);
}

constexpr Scenario kScenarios[] = {
    {"pingpong", hsw::obs::SharingPattern::kPingPong, make_pingpong},
    {"lock", hsw::obs::SharingPattern::kMigratory, make_lock},
    {"false_sharing", hsw::obs::SharingPattern::kFalseShared,
     make_false_sharing},
};

constexpr std::size_t kProtocolN = std::size(kProtocols);
constexpr std::size_t kScenarioN = std::size(kScenarios);

Cell run_cell(hsw::Protocol protocol, const Scenario& scenario, int rounds) {
  hsw::SystemConfig config = hsw::SystemConfig::source_snoop();
  config.protocol = protocol;
  hsw::System system(config);
  const hsw::Trace trace = scenario.make(system, rounds);

  hsw::obs::LineStatsRecorder recorder(protocol, /*stream=*/0);
  hsw::InstrumentationScope scope;
  scope.linestats = &recorder;
  hsw::replay(system, trace, scope);

  hsw::obs::LineStatsHub hub;
  hub.absorb(std::move(recorder));
  const hsw::obs::MergedLineStats merged = hub.merged();

  Cell cell;
  for (const hsw::Mesif from : {hsw::Mesif::kExclusive, hsw::Mesif::kModified}) {
    cell.snoop_to_s +=
        merged.transition(hsw::obs::Level::kL3, from,
                          hsw::obs::LineOp::kSnoopRead, hsw::Mesif::kShared);
    cell.snoop_to_o +=
        merged.transition(hsw::obs::Level::kL3, from,
                          hsw::obs::LineOp::kSnoopRead, hsw::Mesif::kOwned);
  }
  if (!merged.top_lines.empty()) {
    cell.pattern = merged.top_lines.front().pattern;
    cell.top = merged.top_lines.front().record;
  }
  return cell;
}

const Cell& cell_of(const std::vector<Cell>& cells, std::size_t protocol,
                    std::size_t scenario) {
  return cells[protocol * kScenarioN + scenario];
}

constexpr std::size_t kStateIdx(hsw::Mesif s) {
  return hsw::protocol::idx(s);
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv,
      "flight-recorder sharing-pattern matrix: contention traces classified "
      "per coherence-protocol family",
      hswbench::ProtocolFlagPolicy::kAllFamilies);
  if (!args.trace.empty() || args.attribution || !args.metrics.empty() ||
      !args.linestats.empty()) {
    std::fprintf(stderr,
                 "note: sharing_patterns attaches its own per-cell flight "
                 "recorder across all four protocols; --trace/--attribution/"
                 "--metrics/--linestats are ignored here\n");
  }
  const int rounds = args.quick ? 400 : 4000;

  // One independent System + recorder per cell, fanned out over the shared
  // pool into pre-assigned slots: byte-identical output for any --jobs.
  std::vector<Cell> cells(kProtocolN * kScenarioN);
  hsw::ThreadPool pool(args.jobs);
  hsw::parallel_for_indexed(pool, cells.size(), [&](std::size_t i) {
    cells[i] = run_cell(kProtocols[i / kScenarioN],
                        kScenarios[i % kScenarioN], rounds);
  });

  hsw::Table table({"protocol", "scenario", "pattern", "cores", "reads",
                    "writes", "inval", "fwd", "upd", "snoop to S",
                    "snoop to O", "S res ns", "M res ns", "O res ns"});
  for (std::size_t p = 0; p < kProtocolN; ++p) {
    for (std::size_t s = 0; s < kScenarioN; ++s) {
      const Cell& c = cell_of(cells, p, s);
      table.add_row(
          {std::string(hsw::to_string(kProtocols[p])), kScenarios[s].name,
           hsw::obs::to_string(c.pattern), std::to_string(c.top.cores_seen()),
           std::to_string(c.top.reads), std::to_string(c.top.writes),
           std::to_string(c.top.invalidations),
           std::to_string(c.top.forwards), std::to_string(c.top.updates),
           std::to_string(c.snoop_to_s), std::to_string(c.snoop_to_o),
           hsw::cell(c.top.residency_ns[kStateIdx(hsw::Mesif::kShared)], 1),
           hsw::cell(c.top.residency_ns[kStateIdx(hsw::Mesif::kModified)], 1),
           hsw::cell(c.top.residency_ns[kStateIdx(hsw::Mesif::kOwned)], 1)});
    }
  }
  hswbench::print_table(
      "sharing-pattern matrix: the flight recorder's view of the hottest "
      "line per (protocol, contention scenario)\n",
      table, args.csv);

  // Behaviour gates: the golden must keep telling the protocol story.
  bool ok = true;
  auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "sharing_patterns: FAILED expectation: %s\n", what);
      ok = false;
    }
  };
  constexpr std::size_t kMesif = 0;
  constexpr std::size_t kMoesi = 2;
  constexpr std::size_t kDragon = 3;
  // The classifier reads the access shape, which the trace fixes; every
  // family must agree on what the workload *is*.
  for (std::size_t p = 0; p < kProtocolN; ++p) {
    for (std::size_t s = 0; s < kScenarioN; ++s) {
      expect(cell_of(cells, p, s).pattern == kScenarios[s].expected,
             "each contention generator classifies as its own pattern on "
             "every protocol family");
    }
  }
  const std::size_t owned = kStateIdx(hsw::Mesif::kOwned);
  for (std::size_t s = 0; s < kScenarioN; ++s) {
    expect(cell_of(cells, kMesif, s).top.residency_ns[owned] == 0.0,
           "MESIF never accrues Owned residency");
  }
  expect(cell_of(cells, kMoesi, 0).top.residency_ns[owned] > 0.0,
         "MOESI accrues Owned residency on pingpong (M demotes to O instead "
         "of an eager writeback)");
  expect(cell_of(cells, kMoesi, 0).snoop_to_o > 0 &&
             cell_of(cells, kMoesi, 0).snoop_to_s == 0,
         "MOESI owner demotions on pingpong land in Owned, never Shared "
         "(the writeback is deferred)");
  expect(cell_of(cells, kMesif, 0).snoop_to_s > 0 &&
             cell_of(cells, kMesif, 0).snoop_to_o == 0,
         "MESIF owner demotions on pingpong land in Shared (eager "
         "writeback), never Owned");
  for (std::size_t s = 0; s < kScenarioN; ++s) {
    expect(cell_of(cells, kMesif, s).snoop_to_o == 0,
           "MESIF's transition matrix never enters Owned");
  }
  expect(cell_of(cells, kDragon, 0).top.updates > 0,
         "Dragon updates the contended pingpong line in place");
  expect(cell_of(cells, kDragon, 0).top.invalidations == 0,
         "Dragon records no invalidations on pingpong (updates keep reader "
         "copies alive)");
  expect(cell_of(cells, kMesif, 0).top.updates == 0 &&
             cell_of(cells, kMesif, 0).top.invalidations > 0,
         "MESIF pays an invalidation per pingpong handoff and never updates");

  if (ok) std::printf("\nmatrix expectations: ok\n");
  return ok ? 0 : 1;
}
