// Per-component latency attribution across the protocol configurations.
//
// The observability counterpart of Tables III-V: every (configuration,
// placement) pair is measured with the transaction tracer attached and the
// mean per-access nanoseconds are split over the protocol components on the
// critical path (ring, CBo, QPI, home agent, directory, HitME, DRAM, core
// snoops).  This is where the narrative effects become numbers in named
// columns:
//
//   * Table V's stale-directory broadcasts: the `ha` + `qpi` columns of the
//     "stale shared DRAM" row under COD vs the same row elsewhere;
//   * Fig. 7's HitME short-circuit: the `hitme` column paying a probe while
//     the `core-snoop`/`qpi` forward legs disappear in the small-set regime;
//   * the home-snoop penalty: `ha` time appearing on local-memory reads.
#include <cstdio>

#include "common.h"

namespace {

struct Config {
  const char* name;
  hsw::SystemConfig config;
};

struct Case {
  const char* name;
  // Placement relative to the reader (core 0) and the machine's last node
  // (the other socket in 2-node configurations, the 3-hop node under COD).
  hsw::Mesif state;
  hsw::CacheLevel level;
  enum class Where { kLocal, kNode, kRemote, kStaleShared, kMigratory } where;
  std::uint64_t buffer;
  std::uint64_t lines;
};

hsw::SystemConfig cod_das() {
  hsw::SystemConfig config = hsw::SystemConfig::cluster_on_die();
  hsw::ProtocolFeatures features =
      hsw::ProtocolFeatures::for_mode(hsw::SnoopMode::kCod);
  features.directory = true;
  features.hitme = false;  // classic directory-assisted snoop, no HitME cache
  config.feature_override = features;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv,
      "Latency attribution: mean ns per access by protocol component, per "
      "(configuration, placement, state)");

  const Config configs[] = {
      {"source", hsw::SystemConfig::source_snoop()},
      {"home", hsw::SystemConfig::home_snoop()},
      {"cod", hsw::SystemConfig::cluster_on_die()},
      {"cod_das", cod_das()},
  };

  using Where = Case::Where;
  const Case cases[] = {
      {"local L3 E", hsw::Mesif::kExclusive, hsw::CacheLevel::kL3,
       Where::kLocal, hsw::kib(512), 2048},
      {"node M", hsw::Mesif::kModified, hsw::CacheLevel::kL1L2, Where::kNode,
       hsw::kib(128), 2048},
      {"remote M", hsw::Mesif::kModified, hsw::CacheLevel::kL3, Where::kRemote,
       hsw::kib(512), 2048},
      {"remote E", hsw::Mesif::kExclusive, hsw::CacheLevel::kL3,
       Where::kRemote, hsw::kib(512), 2048},
      {"remote S", hsw::Mesif::kShared, hsw::CacheLevel::kL3, Where::kRemote,
       hsw::kib(512), 2048},
      {"local DRAM", hsw::Mesif::kModified, hsw::CacheLevel::kMemory,
       Where::kLocal, hsw::mib(1), 2048},
      {"remote DRAM", hsw::Mesif::kModified, hsw::CacheLevel::kMemory,
       Where::kRemote, hsw::mib(1), 2048},
      // Table V regime: lines shared across nodes, then silently evicted —
      // the in-memory directory is left saying snoop-all.  The buffer
      // exceeds the HitME coverage so the stale state actually governs.
      {"stale shared DRAM", hsw::Mesif::kShared, hsw::CacheLevel::kMemory,
       Where::kStaleShared, hsw::mib(2), 2048},
      // Fig. 7 small-set regime: shared lines in a remote L3, within the
      // HitME coverage — under COD the home agent short-circuits.
      {"migratory S", hsw::Mesif::kShared, hsw::CacheLevel::kL3,
       Where::kMigratory, hsw::kib(128), 2048},
  };

  std::vector<std::string> header{"config", "placement", "ns/access"};
  for (std::size_t c = 0; c < hsw::trace::kComponentCount; ++c) {
    header.push_back(
        hsw::trace::to_string(static_cast<hsw::trace::Component>(c)));
  }
  hsw::Table table(header);

  hsw::trace::TraceSink sink;
  hsw::metrics::MetricsHub hub;
  hsw::obs::LineStatsHub lhub;
  std::uint32_t stream = 0;
  for (const Config& cfg : configs) {
    hsw::System probe(cfg.config);
    const hsw::SystemTopology& topo = probe.topology();
    const int last = probe.node_count() - 1;
    for (const Case& c : cases) {
      hsw::System sys(cfg.config);
      hsw::LatencyConfig lc;
      lc.reader_core = 0;
      lc.placement.state = c.state;
      lc.placement.level = c.level;
      switch (c.where) {
        case Where::kLocal:
          lc.placement.owner_core = 0;
          lc.placement.memory_node = 0;
          break;
        case Where::kNode:
          lc.placement.owner_core = 1;
          lc.placement.memory_node = 0;
          break;
        case Where::kRemote:
          lc.placement.owner_core = topo.node(last).cores[1];
          lc.placement.memory_node = last;
          if (c.state == hsw::Mesif::kShared) {
            lc.placement.sharers = {topo.node(last).cores[2]};
          }
          break;
        case Where::kStaleShared:
          // Home on the last node, Forward copy taken by a core in the
          // reader's node (Table V off-diagonal), everything evicted.
          lc.placement.owner_core = topo.node(last).cores[1];
          lc.placement.memory_node = last;
          lc.placement.sharers = {topo.node(0).cores[2]};
          break;
        case Where::kMigratory: {
          // Fig. 7's three-node shape (H:n1 F:n2) where the machine has the
          // nodes for it: the home CA misses, so the home agent's HitME
          // probe decides whether memory is served without a broadcast.
          // Two-node machines degenerate to H:n1 F:n1.
          const int fwd = last >= 2 ? 2 : 1;
          lc.placement.owner_core = topo.node(1).cores[1];
          lc.placement.memory_node = 1;
          lc.placement.sharers = {fwd == 1 ? topo.node(1).cores[2]
                                           : topo.node(fwd).cores[1]};
          break;
        }
      }
      lc.buffer_bytes = c.buffer;
      lc.max_measured_lines = c.lines;
      lc.seed = args.seed;

      hsw::trace::Tracer tracer(args.trace.empty()
                                    ? hsw::trace::Tracer::Mode::kAttribution
                                    : hsw::trace::Tracer::Mode::kFull,
                                stream, hswbench::kBenchTraceCapacity);
      lc.instrumentation.tracer = &tracer;
      // The metrics registry shares the tracer's stream id so the report's
      // per-stream samples line up with the attribution rows.
      std::optional<hsw::metrics::MetricsRegistry> registry;
      if (!args.metrics.empty()) {
        registry.emplace(stream);
        lc.instrumentation.metrics = &*registry;
      }
      // The flight recorder rides the same stream id: the linestats report's
      // per-line rows name the (configuration, placement) case they came
      // from via the stream column.
      std::optional<hsw::obs::LineStatsRecorder> recorder;
      if (!args.linestats.empty()) {
        recorder.emplace(cfg.config.protocol, stream);
        lc.instrumentation.linestats = &*recorder;
      }
      ++stream;
      const hsw::LatencyResult r = hsw::measure_latency(sys, lc);
      sink.absorb(std::move(tracer));
      if (registry) hub.absorb(std::move(*registry));
      if (recorder) lhub.absorb(std::move(*recorder));

      const double n = static_cast<double>(r.lines_measured);
      std::vector<std::string> row{cfg.name, c.name,
                                   hsw::cell(r.mean_ns, 1)};
      for (std::size_t comp = 0; comp < hsw::trace::kComponentCount; ++comp) {
        row.push_back(hsw::cell(r.component_ns[comp] / n, 1));
      }
      table.add_row(std::move(row));
    }
    if (&cfg != &configs[std::size(configs) - 1]) table.add_separator();
  }

  hswbench::print_table(
      "Latency attribution: mean ns per access on the critical path, by "
      "protocol component",
      table, args.csv);
  hswbench::print_paper_note(
      "read each row left to right as the anatomy of one access; compare "
      "`stale shared DRAM` under cod (broadcast: ha+qpi pay Table V's "
      "+78..89 ns) against source/home; compare `migratory S` under cod "
      "(hitme column, no forward legs) against cod_das (directory serves "
      "from memory) — Fig. 7's short-circuit as a named span");

  if (!args.trace.empty() && sink.write(args.trace)) {
    std::printf("wrote %s (%zu protocol transactions)\n", args.trace.c_str(),
                sink.record_count());
  }
  if (!args.linestats.empty()) {
    const hsw::obs::MergedLineStats merged = lhub.merged();
    hswbench::write_linestats_file(args, merged);
    hswbench::write_metrics_report(
        args, hub, hsw::obs::render_linestats_section(merged));
  } else {
    hswbench::write_metrics_report(args, hub);
  }
  return 0;
}
