// Shared plumbing for the per-table / per-figure bench binaries.
//
// Every bench prints (a) the reproduced table/figure as ASCII, in the
// paper's layout, with the paper's reference values where they are scalar,
// and (b) optionally a CSV (--csv <path>) for external plotting.
// EXPERIMENTS.md is generated from these outputs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/hswbench.h"
#include "util/cli.h"
#include "util/csv.h"

namespace hswbench {

struct BenchArgs {
  std::string csv;        // empty = no CSV output
  bool quick = false;     // trim sweep sizes for smoke runs
  std::uint64_t seed = 1;
};

// Parses the standard bench flags; exits on --help / bad flags.
inline BenchArgs parse_args(int argc, char** argv, const char* summary) {
  BenchArgs args;
  hsw::CommandLine cli(summary);
  cli.add_string("csv", &args.csv, "write the series to this CSV file");
  cli.add_bool("quick", &args.quick, "reduced sweep for smoke testing");
  std::int64_t seed = 1;
  cli.add_int("seed", &seed, "placement/chase RNG seed");
  if (!cli.parse(argc, argv)) std::exit(0);
  args.seed = static_cast<std::uint64_t>(seed);
  return args;
}

// One named series over a shared size axis.
struct Series {
  std::string name;
  std::vector<double> values;  // aligned with the size axis
};

inline void print_sized_series(const char* title,
                               const std::vector<std::uint64_t>& sizes,
                               const std::vector<Series>& series,
                               const std::string& csv_path,
                               const char* unit) {
  std::printf("%s\n", title);
  std::vector<std::string> header{"data set size"};
  for (const Series& s : series) header.push_back(s.name);
  hsw::Table table(header);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row{hsw::format_bytes(sizes[i])};
    for (const Series& s : series) {
      row.push_back(i < s.values.size() ? hsw::cell(s.values[i], 1)
                                        : std::string{});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s(values in %s)\n\n", table.to_string().c_str(), unit);

  if (!csv_path.empty()) {
    std::vector<std::string> csv_header{"bytes"};
    for (const Series& s : series) csv_header.push_back(s.name);
    hsw::CsvWriter csv(csv_path, csv_header);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::vector<std::string> row{std::to_string(sizes[i])};
      for (const Series& s : series) {
        row.push_back(i < s.values.size() ? hsw::cell(s.values[i], 3)
                                          : std::string{});
      }
      csv.add_row(row);
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
}

// Sweep axis used by the figure benches.
inline std::vector<std::uint64_t> figure_sizes(const BenchArgs& args,
                                               std::uint64_t max_bytes) {
  if (args.quick) max_bytes = std::min<std::uint64_t>(max_bytes, hsw::mib(4));
  return hsw::sweep_sizes(hsw::kib(16), max_bytes);
}

// Convenience: run one latency sweep and return its mean-latency series.
inline Series latency_series(std::string name, hsw::LatencySweepConfig config) {
  Series series;
  series.name = std::move(name);
  for (const hsw::LatencySweepPoint& p : hsw::latency_sweep(config)) {
    series.values.push_back(p.result.mean_ns);
  }
  return series;
}

inline void print_paper_note(const char* note) {
  std::printf("paper reference: %s\n\n", note);
}

}  // namespace hswbench
