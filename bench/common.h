// Shared plumbing for the per-table / per-figure bench binaries.
//
// Every bench prints (a) the reproduced table/figure as ASCII, in the
// paper's layout, with the paper's reference values where they are scalar,
// and (b) optionally a CSV (--csv <path>) for external plotting.
// EXPERIMENTS.md is generated from these outputs.
//
// All benches take --jobs N (default: hardware_concurrency).  Sweep points
// are dispatched over one shared ThreadPool and written to slots indexed by
// (series, size), so the printed tables and CSVs are bit-identical for any
// job count; --jobs 1 is the fully serial path.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/hswbench.h"
#include "sim/thread_pool.h"
#include "util/cli.h"
#include "util/csv.h"

namespace hswbench {

struct BenchArgs {
  std::string csv;        // empty = no CSV output
  bool quick = false;     // trim sweep sizes for smoke runs
  std::uint64_t seed = 1;
  unsigned jobs = 0;      // sweep-point worker threads; 0 = hardware_concurrency
};

// Parses the standard bench flags.  Exits 0 on --help, 1 on bad flags (CI
// must see a failure when an invocation has a typo).
inline BenchArgs parse_args(int argc, char** argv, const char* summary) {
  BenchArgs args;
  hsw::CommandLine cli(summary);
  cli.add_string("csv", &args.csv, "write the series to this CSV file");
  cli.add_bool("quick", &args.quick, "reduced sweep for smoke testing");
  std::int64_t seed = 1;
  cli.add_int("seed", &seed, "placement/chase RNG seed");
  std::int64_t jobs = 0;
  cli.add_int("jobs", &jobs,
              "worker threads for sweep points (1 = serial, 0 = all cores)");
  switch (cli.parse_status(argc, argv)) {
    case hsw::CommandLine::ParseStatus::kHelp:
      std::exit(0);
    case hsw::CommandLine::ParseStatus::kError:
      std::exit(1);
    case hsw::CommandLine::ParseStatus::kOk:
      break;
  }
  if (jobs < 0) {
    std::fprintf(stderr, "--jobs must be >= 0\n");
    std::exit(1);
  }
  args.seed = static_cast<std::uint64_t>(seed);
  args.jobs = static_cast<unsigned>(jobs);
  return args;
}

// One named series over a shared size axis.
struct Series {
  std::string name;
  std::vector<double> values;  // aligned with the size axis
};

inline void print_sized_series(const char* title,
                               const std::vector<std::uint64_t>& sizes,
                               const std::vector<Series>& series,
                               const std::string& csv_path,
                               const char* unit) {
  std::printf("%s\n", title);
  std::vector<std::string> header{"data set size"};
  for (const Series& s : series) header.push_back(s.name);
  hsw::Table table(header);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row{hsw::format_bytes(sizes[i])};
    for (const Series& s : series) {
      row.push_back(i < s.values.size() ? hsw::cell(s.values[i], 1)
                                        : std::string{});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s(values in %s)\n\n", table.to_string().c_str(), unit);

  if (!csv_path.empty()) {
    std::vector<std::string> csv_header{"bytes"};
    for (const Series& s : series) csv_header.push_back(s.name);
    hsw::CsvWriter csv(csv_path, csv_header);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::vector<std::string> row{std::to_string(sizes[i])};
      for (const Series& s : series) {
        row.push_back(i < s.values.size() ? hsw::cell(s.values[i], 3)
                                          : std::string{});
      }
      csv.add_row(row);
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
}

// Prints a finished table and optionally mirrors it to a CSV (the golden
// regression files compare the CSV form cell by cell).
inline void print_table(const char* title, const hsw::Table& table,
                        const std::string& csv_path) {
  std::printf("%s\n%s", title, table.to_string().c_str());
  if (!csv_path.empty()) {
    hsw::CsvWriter csv(csv_path, table.header());
    for (const std::vector<std::string>& row : table.data_rows()) {
      csv.add_row(row);
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
}

// Sweep axis used by the figure benches.
inline std::vector<std::uint64_t> figure_sizes(const BenchArgs& args,
                                               std::uint64_t max_bytes) {
  if (args.quick) max_bytes = std::min<std::uint64_t>(max_bytes, hsw::mib(4));
  return hsw::sweep_sizes(hsw::kib(16), max_bytes);
}

// A named sweep queued for the parallel fan-out below.
struct LatencySeriesPlan {
  std::string name;
  hsw::LatencySweepConfig config;
};

struct BandwidthSeriesPlan {
  std::string name;
  hsw::BandwidthSweepConfig config;
};

// Runs every (series, size) sweep point of `plans` over one shared pool and
// returns the mean-latency series in plan order.  Each point writes its own
// pre-assigned slot, so the result is identical for any job count.
inline std::vector<Series> run_latency_series(
    const std::vector<LatencySeriesPlan>& plans, unsigned jobs) {
  std::vector<Series> series(plans.size());
  std::vector<std::pair<std::size_t, std::size_t>> work;  // (plan, size index)
  for (std::size_t p = 0; p < plans.size(); ++p) {
    series[p].name = plans[p].name;
    series[p].values.resize(plans[p].config.sizes.size());
    for (std::size_t i = 0; i < plans[p].config.sizes.size(); ++i) {
      work.emplace_back(p, i);
    }
  }
  hsw::ThreadPool pool(jobs);
  hsw::parallel_for_indexed(pool, work.size(), [&](std::size_t w) {
    const auto [p, i] = work[w];
    const hsw::LatencySweepPoint point =
        hsw::latency_sweep_point(plans[p].config, plans[p].config.sizes[i]);
    series[p].values[i] = point.result.mean_ns;
  });
  return series;
}

// Same fan-out for bandwidth sweeps; series values are GB/s.
inline std::vector<Series> run_bandwidth_series(
    const std::vector<BandwidthSeriesPlan>& plans, unsigned jobs) {
  std::vector<Series> series(plans.size());
  std::vector<std::pair<std::size_t, std::size_t>> work;
  for (std::size_t p = 0; p < plans.size(); ++p) {
    series[p].name = plans[p].name;
    series[p].values.resize(plans[p].config.sizes.size());
    for (std::size_t i = 0; i < plans[p].config.sizes.size(); ++i) {
      work.emplace_back(p, i);
    }
  }
  hsw::ThreadPool pool(jobs);
  hsw::parallel_for_indexed(pool, work.size(), [&](std::size_t w) {
    const auto [p, i] = work[w];
    const hsw::BandwidthSweepPoint point = hsw::bandwidth_sweep_point(
        plans[p].config, plans[p].config.sizes[i]);
    series[p].values[i] = point.gbps;
  });
  return series;
}

// Convenience: run one latency sweep and return its mean-latency series.
inline Series latency_series(std::string name, hsw::LatencySweepConfig config) {
  Series series;
  series.name = std::move(name);
  for (const hsw::LatencySweepPoint& p : hsw::latency_sweep(config)) {
    series.values.push_back(p.result.mean_ns);
  }
  return series;
}

inline void print_paper_note(const char* note) {
  std::printf("paper reference: %s\n\n", note);
}

}  // namespace hswbench
