// Shared plumbing for the per-table / per-figure bench binaries.
//
// Every bench prints (a) the reproduced table/figure as ASCII, in the
// paper's layout, with the paper's reference values where they are scalar,
// and (b) optionally a CSV (--csv <path>) for external plotting.
// EXPERIMENTS.md is generated from these outputs.
//
// All benches take --jobs N (default: hardware_concurrency).  Sweep points
// are dispatched over one shared ThreadPool and written to slots indexed by
// (series, size), so the printed tables and CSVs are bit-identical for any
// job count; --jobs 1 is the fully serial path.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/hswbench.h"
#include "metrics/report.h"
#include "obs/line_stats.h"
#include "obs/resource_stats.h"
#include "sim/thread_pool.h"
#include "trace/sink.h"
#include "util/cli.h"
#include "util/csv.h"

namespace hswbench {

struct BenchArgs {
  std::string csv;        // empty = no CSV output
  std::string trace;      // --trace FILE: export span trees (.csv or JSON)
  std::string metrics;    // --metrics FILE: write the uncore-metrics report
  std::string linestats;  // --linestats FILE: per-line flight-recorder report
  std::string resstats;   // --resstats FILE: per-resource queueing report
  bool attribution = false;  // print per-component latency attribution
  bool progress = false;  // --progress: sweep-point heartbeat on stderr
  bool quick = false;     // trim sweep sizes for smoke runs
  std::uint64_t seed = 1;
  unsigned jobs = 0;      // sweep-point worker threads; 0 = hardware_concurrency
  // Bandwidth-rate engine (--engine analytic|simulated); latency-only
  // benches ignore it.
  hsw::BandwidthEngine engine = hsw::BandwidthEngine::kAnalytic;
  // Coherence-protocol family (--protocol mesif|mesi|moesi|dragon).  The
  // golden figure/table benches pin MESIF configs (the paper's machine) and
  // reject anything else at the parse edge — a run must never record a
  // protocol in its manifest that its SystemConfigs did not actually use.
  hsw::Protocol protocol = hsw::Protocol::kMesif;
  // Set-sampling (--sample-ratio/--sample-seed): sweep points simulate only
  // the sampled fraction of cache-set granules.  1.0 (default) is exact and
  // byte-identical to the goldens; see EXPERIMENTS.md "Performance".
  hsw::SamplingConfig sampling;
  std::string tool;       // bench binary name (report manifest)
  std::string summary;    // bench one-liner (report manifest)
};

// Output flags fail fast: a typo'd directory should kill the run before the
// sweeps burn minutes, not after.  Probes with O_APPEND so an existing file
// is left untouched; a newly created probe file is removed again.  Returns
// the error message (for a CommandLine check) instead of exiting.
inline std::optional<std::string> writable_path_error(const std::string& path,
                                                      const char* flag) {
  if (path.empty()) return std::nullopt;
  std::FILE* pre = std::fopen(path.c_str(), "r");
  const bool existed = pre != nullptr;
  if (pre != nullptr) std::fclose(pre);
  std::FILE* probe = std::fopen(path.c_str(), "a");
  if (probe == nullptr) {
    return std::string(flag) + ": cannot open " + path + " for writing";
  }
  std::fclose(probe);
  if (!existed) std::remove(path.c_str());
  return std::nullopt;
}

// How a bench relates to the --protocol axis.  kPinnedMesif (the default,
// every paper figure/table) refuses a non-MESIF request instead of silently
// running MESIF under a mislabeled manifest; kAllFamilies (protocol_matrix)
// sweeps every family itself, so a --protocol selection is meaningless and
// only warned about.
enum class ProtocolFlagPolicy { kPinnedMesif, kAllFamilies };

// Parses the standard bench flags.  Exits 0 on --help, 1 on bad flags (CI
// must see a failure when an invocation has a typo).  Every validation —
// value ranges, flag combinations, the protocol pin, output-path probes —
// runs as a CommandLine check inside parse_status(), so the switch below is
// the binary's only exit site for argument errors (the facade rule in
// core/hswbench.h: the library never exits, the CLI edge owns the policy).
inline BenchArgs parse_args(
    int argc, char** argv, const char* summary,
    ProtocolFlagPolicy protocol_policy = ProtocolFlagPolicy::kPinnedMesif) {
  BenchArgs args;
  hsw::CommandLine cli(summary);
  cli.add_string("csv", &args.csv, "write the series to this CSV file");
  cli.add_string("trace", &args.trace,
                 "export per-access protocol span trees to this file "
                 "(.csv = one row per span; anything else = Chrome-trace "
                 "JSON for https://ui.perfetto.dev)");
  cli.add_string("metrics", &args.metrics,
                 "write an uncore-PMU-style metrics run report (JSON) to "
                 "this file; diff reports with hswsim-report");
  cli.add_string("linestats", &args.linestats,
                 "write the per-line coherence flight-recorder report (JSON): "
                 "sharing-pattern classification, state residency, and the "
                 "state-transition matrix; view with hswsim-report lines");
  cli.add_string("resstats", &args.resstats,
                 "write the per-resource queueing report (JSON): busy/idle "
                 "residency, waits, and queue depths at every ring stop, iMC "
                 "channel, QPI link, and bridge (simulated engine only); "
                 "view with hswsim-report bottlenecks");
  cli.add_bool("attribution", &args.attribution,
               "print the per-component latency attribution summary");
  cli.add_bool("progress", &args.progress,
               "print a sweep-point heartbeat to stderr (stdout untouched)");
  cli.add_bool("quick", &args.quick, "reduced sweep for smoke testing");
  std::int64_t seed = 1;
  cli.add_int("seed", &seed, "placement/chase RNG seed");
  std::int64_t jobs = 0;
  cli.add_int("jobs", &jobs,
              "worker threads for sweep points (1 = serial, 0 = all cores)");
  std::string engine = "analytic";
  cli.add_string("engine", &engine,
                 "bandwidth-rate engine: analytic (max-min model) or "
                 "simulated (event-driven queueing)");
  std::string protocol = "mesif";
  cli.add_string("protocol", &protocol,
                 "coherence-protocol family: mesif (Haswell-EP) | mesi | "
                 "moesi | dragon (update-based)");
  cli.add_double("sample-ratio", &args.sampling.ratio,
                 "fraction of cache sets to simulate, in (0, 1], rounded to "
                 "1/2^k; 1 = exact (default), ~0.06 trades <2% error on the "
                 "big sweep points for the speedup (validate_sampling)");
  std::int64_t sample_seed = 0;
  cli.add_int("sample-seed", &sample_seed,
              "re-randomizes the sampled realization (deterministic per "
              "(ratio, seed))");
  std::string spec_path;
  cli.add_string("spec", &spec_path,
                 "load an ExperimentSpec JSON document (the same format "
                 "hswsim-serve accepts); its seed / engine / protocol / "
                 "sample-ratio / sample-seed override those flags, while the "
                 "sweep geometry stays the bench's own");

  cli.add_check([&]() -> std::optional<std::string> {
    if (jobs < 0) return "--jobs must be >= 0";
    args.jobs = static_cast<unsigned>(jobs);
    args.seed = static_cast<std::uint64_t>(seed);
    args.sampling.seed = static_cast<std::uint64_t>(sample_seed);
    if (!(args.sampling.ratio > 0.0) || args.sampling.ratio > 1.0) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "--sample-ratio must be in (0, 1], got %g",
                    args.sampling.ratio);
      return std::string(buf);
    }
    return std::nullopt;
  });
  cli.add_check([&]() -> std::optional<std::string> {
    const std::optional<hsw::BandwidthEngine> parsed =
        hsw::parse_bandwidth_engine(engine);
    if (!parsed) {
      return "--engine must be analytic or simulated, got '" + engine + "'";
    }
    args.engine = *parsed;
    return std::nullopt;
  });
  cli.add_check([&]() -> std::optional<std::string> {
    const std::optional<hsw::Protocol> parsed = hsw::parse_protocol(protocol);
    if (!parsed) {
      return "--protocol must be mesif, mesi, moesi, or dragon, got '" +
             protocol + "'";
    }
    args.protocol = *parsed;
    return std::nullopt;
  });
  // --spec runs after the scalar flags so the spec's shared knobs override
  // them, and before the policy checks below so those see the final values.
  cli.add_check([&]() -> std::optional<std::string> {
    if (spec_path.empty()) return std::nullopt;
    std::string error;
    const std::optional<hsw::ExperimentSpec> spec =
        hsw::spec_from_file(spec_path, &error);
    if (!spec) return "--spec: " + error;
    args.seed = spec->seed;
    args.engine = spec->engine;
    args.protocol = spec->protocol;
    args.sampling.ratio = spec->sample_ratio;
    args.sampling.seed = spec->sample_seed;
    return std::nullopt;
  });
  // The flight recorder classifies individual lines; a set-sampled run
  // simulates only a fraction of them on a scaled machine, so the per-line
  // report would silently describe a different population.  Refuse the
  // combination instead of producing a misleading file.
  cli.add_check([&]() -> std::optional<std::string> {
    if (!args.linestats.empty() && args.sampling.ratio < 1.0) {
      return "--linestats requires an exact run: remove --sample-ratio "
             "(set-sampling simulates only a fraction of cache sets, so "
             "per-line sharing stats would describe a scaled machine)";
    }
    return std::nullopt;
  });
  // The per-resource recorder watches the simulated engine's FIFO servers;
  // the analytic solver (and every latency bench) has no queues to observe,
  // so the report would be all zeros.  Refuse the combination instead of
  // writing a misleading file — same policy as --linestats + --sample-ratio.
  cli.add_check([&]() -> std::optional<std::string> {
    if (!args.resstats.empty() &&
        args.engine != hsw::BandwidthEngine::kSimulated) {
      return "--resstats requires --engine simulated: only the event-driven "
             "engine has FIFO servers to observe, so the resources report "
             "would be all zeros";
    }
    return std::nullopt;
  });
  cli.add_check([&]() -> std::optional<std::string> {
    if (args.protocol == hsw::Protocol::kMesif) return std::nullopt;
    switch (protocol_policy) {
      case ProtocolFlagPolicy::kPinnedMesif:
        return "this bench reproduces the paper's MESIF machine and pins "
               "its configs; for the --protocol axis use "
               "bench/protocol_matrix or hswsim_cli";
      case ProtocolFlagPolicy::kAllFamilies:
        std::fprintf(stderr,
                     "note: this bench sweeps every protocol family itself; "
                     "--protocol %s is ignored\n",
                     protocol.c_str());
        break;
    }
    return std::nullopt;
  });
  cli.add_check([&]() -> std::optional<std::string> {
    if (auto e = writable_path_error(args.trace, "--trace")) return e;
    if (auto e = writable_path_error(args.metrics, "--metrics")) return e;
    if (auto e = writable_path_error(args.linestats, "--linestats")) return e;
    return writable_path_error(args.resstats, "--resstats");
  });

  switch (cli.parse_status(argc, argv)) {
    case hsw::CommandLine::ParseStatus::kHelp:
      std::exit(0);
    case hsw::CommandLine::ParseStatus::kError:
      std::exit(1);
    case hsw::CommandLine::ParseStatus::kOk:
      break;
  }
  if (argc > 0 && argv != nullptr) {
    const std::string path = argv[0];
    const std::size_t slash = path.find_last_of('/');
    args.tool = slash == std::string::npos ? path : path.substr(slash + 1);
  }
  args.summary = summary;
  return args;
}

// The run manifest every report flavor embeds (tool, config, timing-constant
// fingerprint, seed, jobs, git).
inline hsw::metrics::ReportManifest make_manifest(const BenchArgs& args) {
  hsw::metrics::ReportManifest manifest;
  manifest.tool = args.tool;
  manifest.config = args.summary;
  manifest.protocol = std::string(hsw::to_string(args.protocol));
  manifest.timing_hash = hsw::timing_fingerprint(
      hsw::TimingParams::haswell_ep(), hsw::to_string(args.protocol));
  manifest.seed = args.seed;
  manifest.jobs = args.jobs;
  manifest.quick = args.quick;
  manifest.git = hsw::metrics::git_describe();
  return manifest;
}

// Writes the --metrics run report: a versioned JSON document with the run
// manifest, the merged final counters/gauges/families/histograms, and the
// gauge time series.  `extra_section` (already rendered JSON, e.g. the
// flight recorder's "linestats" object) is embedded verbatim.  Exits 1 on
// write failure so CI never mistakes a truncated report for a clean run.
inline void write_metrics_report(const BenchArgs& args,
                                 const hsw::metrics::MetricsHub& hub,
                                 const std::string& extra_section = {}) {
  if (args.metrics.empty()) return;
  if (!hsw::metrics::write_report(args.metrics, make_manifest(args),
                                  hub.merged(), extra_section)) {
    std::fprintf(stderr, "failed to write metrics report %s\n",
                 args.metrics.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", args.metrics.c_str());
}

// Writes the --linestats flight-recorder report (same manifest, own version
// key); exit-1-on-failure discipline as above.
inline void write_linestats_file(const BenchArgs& args,
                                 const hsw::obs::MergedLineStats& merged) {
  if (args.linestats.empty()) return;
  if (!hsw::obs::write_linestats_report(args.linestats, make_manifest(args),
                                        merged)) {
    std::fprintf(stderr, "failed to write linestats report %s\n",
                 args.linestats.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", args.linestats.c_str());
}

// Writes the --resstats per-resource queueing report (same manifest, own
// version key); exit-1-on-failure discipline as above.
inline void write_resstats_file(const BenchArgs& args,
                                const hsw::obs::MergedResourceStats& merged) {
  if (args.resstats.empty()) return;
  if (!hsw::obs::write_resources_report(args.resstats, make_manifest(args),
                                        merged)) {
    std::fprintf(stderr, "failed to write resources report %s\n",
                 args.resstats.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", args.resstats.c_str());
}

// --- tracing / attribution -----------------------------------------------
// Shared wiring behind the benches' --trace / --attribution flags.  A bench
// creates one BenchTrace, routes its measurements through it (sweep plans
// via *_plan_options, direct measure_latency calls via measure), and calls
// finish() last: finish writes the trace file and prints the per-component
// attribution table.  Stream ids are assigned from configuration / call
// order, never from scheduling, so exported traces are byte-identical for
// any --jobs value.

// Records retained per stream when exporting: enough protocol transactions
// to inspect every phase of a sweep point without the export growing with
// the measured line count (the tracer keeps the newest records).
inline constexpr std::size_t kBenchTraceCapacity = 192;

class BenchTrace {
 public:
  explicit BenchTrace(const BenchArgs& args)
      : args_(args), path_(args.trace), attribution_(args.attribution) {}

  [[nodiscard]] bool enabled() const { return attribution_ || !path_.empty(); }
  [[nodiscard]] bool tracing() const { return !path_.empty(); }
  [[nodiscard]] bool attribution() const { return attribution_; }
  [[nodiscard]] bool metrics() const { return !args_.metrics.empty(); }
  [[nodiscard]] bool linestats() const { return !args_.linestats.empty(); }
  [[nodiscard]] bool resstats() const { return !args_.resstats.empty(); }

  // Sweep wiring for latency plans: attribution aggregates arrive through
  // LatencyResult::component_ns, so span trees are retained only when a
  // trace file was requested.
  [[nodiscard]] hsw::SweepTraceOptions latency_plan_options(std::size_t plan) {
    hsw::SweepTraceOptions t = base_options(plan);
    t.attribution = attribution_;
    if (tracing()) t.sink = &sink_;
    if (metrics()) t.metrics = &hub_;
    if (linestats()) t.linestats = &lhub_;
    return t;
  }

  // Bandwidth plans carry no per-access results, so --attribution derives
  // the breakdown from retained records instead (finish() falls back to
  // walking the sink).
  [[nodiscard]] hsw::SweepTraceOptions bandwidth_plan_options(std::size_t plan) {
    hsw::SweepTraceOptions t = base_options(plan);
    if (enabled()) t.sink = &sink_;
    if (metrics()) t.metrics = &hub_;
    if (linestats()) t.linestats = &lhub_;
    if (resstats()) t.resstats = &rhub_;
    return t;
  }

  // Wraps a direct measure_latency call (the serial table/ablation benches):
  // one tracer per call, stream ids in call order, the breakdown accumulated
  // under `label`.  The metrics registry shares the tracer's stream id, so
  // the report's per-stream samples line up with the exported trace.
  hsw::LatencyResult measure(hsw::System& system, hsw::LatencyConfig config,
                             std::string label) {
    if (!enabled() && !metrics() && !linestats()) {
      return hsw::measure_latency(system, config);
    }
    const std::uint32_t stream = next_stream_++;
    std::optional<hsw::trace::Tracer> tracer;
    if (enabled()) {
      tracer.emplace(tracing() ? hsw::trace::Tracer::Mode::kFull
                               : hsw::trace::Tracer::Mode::kAttribution,
                     stream, kBenchTraceCapacity);
      config.instrumentation.tracer = &*tracer;
    }
    std::optional<hsw::metrics::MetricsRegistry> registry;
    if (metrics()) {
      registry.emplace(stream);
      config.instrumentation.metrics = &*registry;
    }
    std::optional<hsw::obs::LineStatsRecorder> recorder;
    if (linestats()) {
      recorder.emplace(system.config().protocol, stream);
      config.instrumentation.linestats = &*recorder;
    }
    const hsw::LatencyResult result = hsw::measure_latency(system, config);
    if (attribution_) note(std::move(label), result);
    if (tracer) sink_.absorb(std::move(*tracer));
    if (registry) hub_.absorb(std::move(*registry));
    if (recorder) lhub_.absorb(std::move(*recorder));
    return result;
  }

  // Direct measure_bandwidth calls: spans are retained and the attribution
  // table is derived from them in finish() (bandwidth results carry no
  // per-access breakdown).
  hsw::BandwidthResult measure_bw(hsw::System& system,
                                  hsw::BandwidthConfig config) {
    if (!enabled() && !metrics() && !linestats() && !resstats()) {
      return hsw::measure_bandwidth(system, config);
    }
    const std::uint32_t stream = next_stream_++;
    std::optional<hsw::trace::Tracer> tracer;
    if (enabled()) {
      tracer.emplace(hsw::trace::Tracer::Mode::kFull, stream,
                     kBenchTraceCapacity);
      config.instrumentation.tracer = &*tracer;
    }
    std::optional<hsw::metrics::MetricsRegistry> registry;
    if (metrics()) {
      registry.emplace(stream);
      config.instrumentation.metrics = &*registry;
    }
    std::optional<hsw::obs::LineStatsRecorder> recorder;
    if (linestats()) {
      recorder.emplace(system.config().protocol, stream);
      config.instrumentation.linestats = &*recorder;
    }
    std::optional<hsw::obs::ResourceStatsRecorder> resources;
    if (resstats()) {
      resources.emplace(stream);
      config.instrumentation.resstats = &*resources;
    }
    const hsw::BandwidthResult result = hsw::measure_bandwidth(system, config);
    if (tracer) sink_.absorb(std::move(*tracer));
    if (registry) hub_.absorb(std::move(*registry));
    if (recorder) lhub_.absorb(std::move(*recorder));
    if (resources) rhub_.absorb(std::move(*resources));
    return result;
  }

  // Accumulates a measured point's component breakdown under `label`
  // (labels merge; insertion order is display order).
  void note(std::string label, const hsw::LatencyResult& result) {
    if (!result.has_attribution) return;
    Row& row = row_for(std::move(label));
    for (std::size_t c = 0; c < hsw::trace::kComponentCount; ++c) {
      row.ns[c] += result.component_ns[c];
    }
    row.accesses += static_cast<double>(result.lines_measured);
  }

  // Writes the trace file and prints the attribution table.  Call after the
  // bench's own tables so the regular output (and the golden CSVs) stay
  // untouched.
  void finish() {
    if (attribution_) {
      if (rows_.empty()) note_from_records();
      print_attribution();
    }
    if (tracing() && sink_.write(path_)) {
      std::printf("wrote %s (%zu protocol transactions",
                  path_.c_str(), sink_.record_count());
      if (sink_.dropped() > 0) {
        std::printf("; %llu older ones dropped per stream cap",
                    static_cast<unsigned long long>(sink_.dropped()));
      }
      std::printf(")\n");
    }
    // The metrics report embeds whichever obs sections the run recorded, so
    // one file diffs the whole run; each section also writes its own
    // standalone file when its flag named one.
    std::string extra_sections;
    if (linestats()) {
      const hsw::obs::MergedLineStats merged = lhub_.merged();
      write_linestats_file(args_, merged);
      extra_sections = hsw::obs::render_linestats_section(merged);
    }
    if (resstats()) {
      const hsw::obs::MergedResourceStats merged = rhub_.merged();
      write_resstats_file(args_, merged);
      if (!extra_sections.empty()) extra_sections += ",\n";
      extra_sections += hsw::obs::render_resources_section(merged);
    }
    if (metrics()) write_metrics_report(args_, hub_, extra_sections);
  }

 private:
  struct Row {
    std::string label;
    std::array<double, hsw::trace::kComponentCount> ns{};
    double accesses = 0.0;
  };

  [[nodiscard]] hsw::SweepTraceOptions base_options(std::size_t plan) const {
    hsw::SweepTraceOptions t;
    t.stream_base = static_cast<std::uint32_t>(plan) * hsw::kStreamsPerPlan;
    t.capacity = kBenchTraceCapacity;
    return t;
  }

  Row& row_for(std::string label) {
    for (Row& row : rows_) {
      if (row.label == label) return row;
    }
    rows_.push_back(Row{std::move(label), {}, 0.0});
    return rows_.back();
  }

  // Fallback for benches without LatencyResults (bandwidth): attribute the
  // retained span trees directly.
  void note_from_records() {
    Row& row = row_for("all traced accesses");
    for (const hsw::trace::TraceRecord& record : sink_.merged()) {
      const hsw::trace::AccessAttribution a =
          hsw::trace::attribute(record.spans);
      for (std::size_t c = 0; c < hsw::trace::kComponentCount; ++c) {
        row.ns[c] += a.component_ns[c];
      }
      row.accesses += 1.0;
    }
  }

  void print_attribution() {
    std::vector<std::string> header{"measurement", "ns/access"};
    for (std::size_t c = 0; c < hsw::trace::kComponentCount; ++c) {
      header.push_back(
          hsw::trace::to_string(static_cast<hsw::trace::Component>(c)));
    }
    hsw::Table table(header);
    for (const Row& row : rows_) {
      if (row.accesses <= 0.0) continue;
      double total = 0.0;
      for (const double ns : row.ns) total += ns;
      std::vector<std::string> cells{row.label,
                                     hsw::cell(total / row.accesses, 1)};
      for (const double ns : row.ns) {
        cells.push_back(hsw::cell(ns / row.accesses, 1));
      }
      table.add_row(std::move(cells));
    }
    std::printf(
        "latency attribution: mean ns per access on the critical path, by "
        "protocol component\n%s\n",
        table.to_string().c_str());
  }

  BenchArgs args_;
  std::string path_;
  bool attribution_;
  hsw::trace::TraceSink sink_;
  hsw::metrics::MetricsHub hub_;
  hsw::obs::LineStatsHub lhub_;
  hsw::obs::ResourceStatsHub rhub_;
  std::uint32_t next_stream_ = 0;
  std::vector<Row> rows_;
};

// One named series over a shared size axis.  The queueing columns are
// filled by the simulated bandwidth engine only; when empty (the analytic
// engine, and every latency bench) the printed table and CSV schema are
// exactly the historical ones, so the golden figures never change.
struct Series {
  std::string name;
  std::vector<double> values;  // aligned with the size axis
  std::vector<double> queue_ns = {};         // mean per-line queueing delay
  std::vector<std::string> bottleneck = {};  // busiest resource on the path

  [[nodiscard]] bool has_queueing() const { return !queue_ns.empty(); }
};

inline void print_sized_series(const char* title,
                               const std::vector<std::uint64_t>& sizes,
                               const std::vector<Series>& series,
                               const std::string& csv_path,
                               const char* unit) {
  std::printf("%s\n", title);
  std::vector<std::string> header{"data set size"};
  for (const Series& s : series) header.push_back(s.name);
  for (const Series& s : series) {
    if (!s.has_queueing()) continue;
    header.push_back(s.name + " queue ns");
    header.push_back(s.name + " bottleneck");
  }
  hsw::Table table(header);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row{hsw::format_bytes(sizes[i])};
    for (const Series& s : series) {
      row.push_back(i < s.values.size() ? hsw::cell(s.values[i], 1)
                                        : std::string{});
    }
    for (const Series& s : series) {
      if (!s.has_queueing()) continue;
      row.push_back(i < s.queue_ns.size() ? hsw::cell(s.queue_ns[i], 1)
                                          : std::string{});
      row.push_back(i < s.bottleneck.size() ? s.bottleneck[i]
                                            : std::string{});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s(values in %s)\n\n", table.to_string().c_str(), unit);

  if (!csv_path.empty()) {
    std::vector<std::string> csv_header{"bytes"};
    for (const Series& s : series) csv_header.push_back(s.name);
    for (const Series& s : series) {
      if (!s.has_queueing()) continue;
      csv_header.push_back(s.name + " queue_ns");
      csv_header.push_back(s.name + " bottleneck");
    }
    hsw::CsvWriter csv(csv_path, csv_header);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::vector<std::string> row{std::to_string(sizes[i])};
      for (const Series& s : series) {
        row.push_back(i < s.values.size() ? hsw::cell(s.values[i], 3)
                                          : std::string{});
      }
      for (const Series& s : series) {
        if (!s.has_queueing()) continue;
        row.push_back(i < s.queue_ns.size() ? hsw::cell(s.queue_ns[i], 3)
                                            : std::string{});
        row.push_back(i < s.bottleneck.size() ? s.bottleneck[i]
                                              : std::string{});
      }
      csv.add_row(row);
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
}

// Prints a finished table and optionally mirrors it to a CSV (the golden
// regression files compare the CSV form cell by cell).
inline void print_table(const char* title, const hsw::Table& table,
                        const std::string& csv_path) {
  std::printf("%s\n%s", title, table.to_string().c_str());
  if (!csv_path.empty()) {
    hsw::CsvWriter csv(csv_path, table.header());
    for (const std::vector<std::string>& row : table.data_rows()) {
      csv.add_row(row);
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
}

// Sweep axis used by the figure benches.
inline std::vector<std::uint64_t> figure_sizes(const BenchArgs& args,
                                               std::uint64_t max_bytes) {
  if (args.quick) max_bytes = std::min<std::uint64_t>(max_bytes, hsw::mib(4));
  return hsw::sweep_sizes(hsw::kib(16), max_bytes);
}

// A named sweep queued for the parallel fan-out below.
struct LatencySeriesPlan {
  std::string name;
  hsw::LatencySweepConfig config;
};

struct BandwidthSeriesPlan {
  std::string name;
  hsw::BandwidthSweepConfig config;
};

// --progress heartbeat: one stderr line per finished sweep point (carriage-
// return overwrite, newline only at the end), so long sweeps show liveness
// without touching stdout — the printed tables and golden CSVs must stay
// byte-identical whether the flag is set or not.  tick() is called from the
// pool workers; the counters are atomic and each update is one fprintf.
class ProgressMeter {
 public:
  ProgressMeter(bool enabled, std::string tool, std::size_t total_points)
      : enabled_(enabled),
        tool_(std::move(tool)),
        total_(total_points),
        start_(std::chrono::steady_clock::now()) {}

  void tick(std::uint64_t accesses) {
    if (!enabled_) return;
    const std::size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t acc =
        accesses_.fetch_add(accesses, std::memory_order_relaxed) + accesses;
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double rate = secs > 0.0 ? static_cast<double>(acc) / secs : 0.0;
    std::fprintf(stderr,
                 "\r[%s] sweep point %zu/%zu (%3.0f%%), %.2fM accesses, "
                 "%.0fk accesses/s ",
                 tool_.c_str(), done, total_,
                 total_ > 0 ? 100.0 * static_cast<double>(done) /
                                  static_cast<double>(total_)
                            : 100.0,
                 static_cast<double>(acc) / 1e6, rate / 1e3);
  }

  // Ends the overwrite line; call once after the fan-out drains.
  void finish() const {
    if (enabled_) std::fprintf(stderr, "\n");
  }

 private:
  bool enabled_;
  std::string tool_;
  std::size_t total_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::size_t> done_{0};
  std::atomic<std::uint64_t> accesses_{0};
};

// Runs every (series, size) sweep point of `plans` over one shared pool and
// returns the full LatencyResult grid in (plan, size) order.  Each point
// writes its own pre-assigned slot, so the result is identical for any job
// count.
inline std::vector<std::vector<hsw::LatencyResult>> run_latency_grid(
    const std::vector<LatencySeriesPlan>& plans, unsigned jobs,
    ProgressMeter* progress = nullptr) {
  std::vector<std::vector<hsw::LatencyResult>> grid(plans.size());
  std::vector<std::pair<std::size_t, std::size_t>> work;  // (plan, size index)
  for (std::size_t p = 0; p < plans.size(); ++p) {
    grid[p].resize(plans[p].config.sizes.size());
    for (std::size_t i = 0; i < plans[p].config.sizes.size(); ++i) {
      work.emplace_back(p, i);
    }
  }
  hsw::ThreadPool pool(jobs);
  hsw::parallel_for_indexed(pool, work.size(), [&](std::size_t w) {
    const auto [p, i] = work[w];
    hsw::LatencySweepPoint point =
        hsw::latency_sweep_point(plans[p].config, plans[p].config.sizes[i]);
    if (progress != nullptr) progress->tick(point.result.lines_measured);
    grid[p][i] = std::move(point.result);
  });
  return grid;
}

// BenchArgs-driven overload: wires the --progress heartbeat around the
// fan-out (and closes its stderr line) before returning the grid.
inline std::vector<std::vector<hsw::LatencyResult>> run_latency_grid(
    const std::vector<LatencySeriesPlan>& plans, const BenchArgs& args) {
  std::size_t total = 0;
  for (const LatencySeriesPlan& plan : plans) {
    total += plan.config.sizes.size();
  }
  ProgressMeter progress(args.progress, args.tool, total);
  std::vector<std::vector<hsw::LatencyResult>> grid =
      run_latency_grid(plans, args.jobs, &progress);
  progress.finish();
  return grid;
}

// Mean-latency series (the figures' y-values) from a result grid.
inline std::vector<Series> mean_series(
    const std::vector<LatencySeriesPlan>& plans,
    const std::vector<std::vector<hsw::LatencyResult>>& grid) {
  std::vector<Series> series(plans.size());
  for (std::size_t p = 0; p < plans.size(); ++p) {
    series[p].name = plans[p].name;
    for (const hsw::LatencyResult& r : grid[p]) {
      series[p].values.push_back(r.mean_ns);
    }
  }
  return series;
}

// Per-series tail-latency summary at the largest sweep size (the memory
// regime, where the distribution is widest: DRAM page outcomes and snoop
// races spread the per-access latencies the mean hides).  Printed output
// only — the CSV schema the golden files compare stays untouched.
inline void print_latency_percentiles(
    const std::vector<LatencySeriesPlan>& plans,
    const std::vector<std::uint64_t>& sizes,
    const std::vector<std::vector<hsw::LatencyResult>>& grid) {
  if (sizes.empty() || plans.empty()) return;
  hsw::Table table({"series", "mean", "p50", "p95", "p99", "max"});
  const std::size_t last = sizes.size() - 1;  // ignore trace-only extra points
  for (std::size_t p = 0; p < plans.size(); ++p) {
    if (grid[p].size() <= last) continue;
    const hsw::LatencyResult& r = grid[p][last];
    table.add_row({plans[p].name, hsw::cell(r.mean_ns, 1),
                   hsw::cell(r.p50_ns, 1), hsw::cell(r.p95_ns, 1),
                   hsw::cell(r.p99_ns, 1), hsw::cell(r.max_ns, 1)});
  }
  std::printf("latency percentiles at %s (ns)\n%s\n",
              hsw::format_bytes(sizes.back()).c_str(),
              table.to_string().c_str());
}

// Feeds the largest-size point of every plan into the attribution table.
inline void note_largest_size(BenchTrace& trace,
                              const std::vector<LatencySeriesPlan>& plans,
                              const std::vector<std::uint64_t>& sizes,
                              const std::vector<std::vector<hsw::LatencyResult>>& grid) {
  if (!trace.attribution() || sizes.empty()) return;
  const std::size_t last = sizes.size() - 1;  // ignore trace-only extra points
  for (std::size_t p = 0; p < plans.size(); ++p) {
    if (grid[p].size() <= last) continue;
    trace.note(plans[p].name + " @ " + hsw::format_bytes(sizes[last]),
               grid[p][last]);
  }
}

// When a trace export was requested, appends one beyond-L3 size to every
// plan so the span trees cover the memory anatomy (home agent, DRAM read
// with its page outcome, and — under COD — directory/HitME probes) even in
// --quick runs, whose size axis stops inside the L3.  The extra point is
// trace-only: the printed tables, CSVs, and percentile/attribution rows all
// iterate the original `sizes` axis and never see it.
inline void extend_plans_for_trace(const BenchTrace& trace,
                                   std::vector<LatencySeriesPlan>& plans) {
  if (!trace.tracing() && !trace.metrics()) return;
  const std::uint64_t beyond_l3 = hsw::mib(40);  // node L3 is 12 x 2.5 MiB
  for (LatencySeriesPlan& plan : plans) {
    if (plan.config.sizes.empty() || plan.config.sizes.back() < beyond_l3) {
      plan.config.sizes.push_back(beyond_l3);
    }
  }
}

// Mean-latency-only fan-out (benches that need nothing else).
inline std::vector<Series> run_latency_series(
    const std::vector<LatencySeriesPlan>& plans, unsigned jobs) {
  return mean_series(plans, run_latency_grid(plans, jobs));
}

// Same fan-out for bandwidth sweeps; series values are GB/s.  Bandwidth
// points carry no access count, so the heartbeat reports point progress
// only.
inline std::vector<Series> run_bandwidth_series(
    const std::vector<BandwidthSeriesPlan>& plans, unsigned jobs,
    ProgressMeter* progress = nullptr) {
  std::vector<Series> series(plans.size());
  std::vector<std::pair<std::size_t, std::size_t>> work;
  for (std::size_t p = 0; p < plans.size(); ++p) {
    series[p].name = plans[p].name;
    series[p].values.resize(plans[p].config.sizes.size());
    // The simulated engine reports per-point queueing; surface it as extra
    // columns (the analytic engine leaves these empty and the schema
    // unchanged).
    if (plans[p].config.engine == hsw::BandwidthEngine::kSimulated) {
      series[p].queue_ns.resize(plans[p].config.sizes.size());
      series[p].bottleneck.resize(plans[p].config.sizes.size());
    }
    for (std::size_t i = 0; i < plans[p].config.sizes.size(); ++i) {
      work.emplace_back(p, i);
    }
  }
  hsw::ThreadPool pool(jobs);
  hsw::parallel_for_indexed(pool, work.size(), [&](std::size_t w) {
    const auto [p, i] = work[w];
    hsw::BandwidthSweepPoint point = hsw::bandwidth_sweep_point(
        plans[p].config, plans[p].config.sizes[i]);
    if (progress != nullptr) progress->tick(0);
    series[p].values[i] = point.gbps;
    if (series[p].has_queueing()) {
      series[p].queue_ns[i] = point.mean_queue_ns;
      series[p].bottleneck[i] = std::move(point.bottleneck);
    }
  });
  return series;
}

inline std::vector<Series> run_bandwidth_series(
    const std::vector<BandwidthSeriesPlan>& plans, const BenchArgs& args) {
  std::size_t total = 0;
  for (const BandwidthSeriesPlan& plan : plans) {
    total += plan.config.sizes.size();
  }
  ProgressMeter progress(args.progress, args.tool, total);
  std::vector<Series> series =
      run_bandwidth_series(plans, args.jobs, &progress);
  progress.finish();
  return series;
}

// Convenience: run one latency sweep and return its mean-latency series.
inline Series latency_series(std::string name, hsw::LatencySweepConfig config) {
  Series series;
  series.name = std::move(name);
  for (const hsw::LatencySweepPoint& p : hsw::latency_sweep(config)) {
    series.values.push_back(p.result.mean_ns);
  }
  return series;
}

inline void print_paper_note(const char* note) {
  std::printf("paper reference: %s\n\n", note);
}

// For the few benches whose measurement path does not go through the
// coherence engine (model validation, application kernels): say so instead
// of silently ignoring the flags.
inline void warn_untraced(const BenchArgs& args) {
  if (args.attribution || !args.trace.empty() || !args.metrics.empty() ||
      !args.linestats.empty() || !args.resstats.empty()) {
    std::fprintf(stderr,
                 "note: this bench does not issue per-line engine accesses; "
                 "--trace/--attribution/--metrics/--linestats/--resstats "
                 "produce no output here\n");
  }
}

}  // namespace hswbench
