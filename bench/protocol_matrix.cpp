// Protocol cost matrix: the PR 7 headline figure.
//
// Replays the three sharing-dominated workload traces (mailbox ping-pong,
// contended lock, false sharing — plus the padded false-sharing control)
// under every coherence-protocol family (MESIF / MESI / MOESI / Dragon) on
// the paper's source-snoop machine and prints the (protocol x scenario)
// cost matrix: mean ns per access plus the traffic counters where the
// families differ by design.
//
// What the matrix must show (asserted below, so the golden cannot silently
// drift away from the story):
//   - MOESI's Owned state suppresses the per-demotion memory writebacks
//     MESIF pays on every dirty-line read snoop: iMC writes drop on the
//     sharing scenarios.
//   - Dragon's update broadcasts avoid the invalidation ping-pong: readers
//     of a producer/consumer mailbox keep a live Shared copy instead of
//     re-missing every round.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "sim/thread_pool.h"
#include "workload/trace.h"

namespace {

struct Cell {
  double mean_ns = 0.0;
  std::uint64_t dram_writes = 0;
  std::uint64_t l3_writebacks = 0;
  std::uint64_t snoops_sent = 0;
  std::uint64_t updates_sent = 0;
};

constexpr hsw::Protocol kProtocols[] = {
    hsw::Protocol::kMesif, hsw::Protocol::kMesi, hsw::Protocol::kMoesi,
    hsw::Protocol::kDragon};

struct Scenario {
  const char* name;
  // Builds the trace on the cell's own System (generators allocate their
  // buffers there); identical across protocols because allocation does not
  // depend on the protocol tables.
  hsw::Trace (*make)(hsw::System&, int rounds);
};

// Cross-socket sharing set: half the cores from each socket, so every
// ownership handoff crosses QPI the way the paper's worst cases do.
std::vector<int> sharing_cores(const hsw::System& system) {
  const int far = system.core_count() / 2;
  return {0, 1, 2, 3, far, far + 1, far + 2, far + 3};
}

hsw::Trace make_pingpong(hsw::System& system, int rounds) {
  return hsw::make_pingpong_trace(system, 0, system.core_count() / 2, rounds);
}

hsw::Trace make_lock(hsw::System& system, int rounds) {
  return hsw::make_lock_trace(system, sharing_cores(system), 4, rounds, 1);
}

hsw::Trace make_false_sharing(hsw::System& system, int rounds) {
  return hsw::make_false_sharing_trace(system, sharing_cores(system), rounds,
                                       /*padded=*/false);
}

hsw::Trace make_false_sharing_padded(hsw::System& system, int rounds) {
  return hsw::make_false_sharing_trace(system, sharing_cores(system), rounds,
                                       /*padded=*/true);
}

constexpr Scenario kScenarios[] = {
    {"pingpong", make_pingpong},
    {"lock", make_lock},
    {"false_sharing", make_false_sharing},
    {"false_sharing_padded", make_false_sharing_padded},
};

constexpr std::size_t kProtocolN = std::size(kProtocols);
constexpr std::size_t kScenarioN = std::size(kScenarios);

Cell run_cell(hsw::Protocol protocol, const Scenario& scenario, int rounds) {
  hsw::SystemConfig config = hsw::SystemConfig::source_snoop();
  config.protocol = protocol;
  hsw::System system(config);
  const hsw::Trace trace = scenario.make(system, rounds);
  const hsw::ReplayStats stats = hsw::replay(system, trace);

  Cell cell;
  cell.mean_ns = stats.mean_ns();
  cell.dram_writes = stats.counters[static_cast<std::size_t>(hsw::Ctr::kDramWrites)];
  cell.l3_writebacks =
      stats.counters[static_cast<std::size_t>(hsw::Ctr::kL3WritebacksToMem)];
  cell.snoops_sent =
      stats.counters[static_cast<std::size_t>(hsw::Ctr::kSnoopsSent)];
  cell.updates_sent =
      stats.counters[static_cast<std::size_t>(hsw::Ctr::kUpdatesSent)];
  return cell;
}

const Cell& cell_of(const std::vector<Cell>& cells, std::size_t protocol,
                    std::size_t scenario) {
  return cells[protocol * kScenarioN + scenario];
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv,
      "protocol x scenario cost matrix: sharing-heavy traces replayed under "
      "MESIF, MESI, MOESI, and Dragon",
      hswbench::ProtocolFlagPolicy::kAllFamilies);
  if (!args.trace.empty() || args.attribution || !args.metrics.empty()) {
    std::fprintf(stderr,
                 "note: protocol_matrix sweeps all four protocols in one "
                 "run; --trace/--attribution/--metrics would mix counters "
                 "that are not comparable across protocols and are "
                 "ignored here\n");
  }
  const int rounds = args.quick ? 400 : 4000;

  // One independent System per cell, fanned out over the shared pool into
  // pre-assigned slots: byte-identical output for any --jobs value.
  std::vector<Cell> cells(kProtocolN * kScenarioN);
  hsw::ThreadPool pool(args.jobs);
  hsw::parallel_for_indexed(pool, cells.size(), [&](std::size_t i) {
    cells[i] = run_cell(kProtocols[i / kScenarioN],
                        kScenarios[i % kScenarioN], rounds);
  });

  hsw::Table table({"protocol", "scenario", "mean ns/access", "iMC writes",
                    "L3 writebacks", "snoops sent", "updates sent"});
  for (std::size_t p = 0; p < kProtocolN; ++p) {
    for (std::size_t s = 0; s < kScenarioN; ++s) {
      const Cell& c = cell_of(cells, p, s);
      table.add_row({std::string(hsw::to_string(kProtocols[p])),
                     kScenarios[s].name, hsw::cell(c.mean_ns, 1),
                     std::to_string(c.dram_writes),
                     std::to_string(c.l3_writebacks),
                     std::to_string(c.snoops_sent),
                     std::to_string(c.updates_sent)});
    }
  }
  hswbench::print_table(
      "protocol cost matrix (source snoop, cross-socket sharing sets)\n",
      table, args.csv);

  // The matrix is a regression gate, not just a figure: fail the run when a
  // family stops exhibiting its defining behaviour.
  bool ok = true;
  auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "protocol_matrix: FAILED expectation: %s\n", what);
      ok = false;
    }
  };
  constexpr std::size_t kMesif = 0;
  constexpr std::size_t kMoesi = 2;
  constexpr std::size_t kDragon = 3;
  // Read-snoops of dirty lines are where Owned pays off: MESIF demotes
  // M->S with an eager memory writeback, MOESI demotes M->O and defers it.
  // (false_sharing is write/write: dirty ownership migrates cache-to-cache
  // on the invalidating snoop in every family, so neither side touches the
  // iMC and the comparison is 0 == 0 there.)
  for (const std::size_t s : {std::size_t{0}, std::size_t{1}}) {
    expect(cell_of(cells, kMoesi, s).dram_writes <
               cell_of(cells, kMesif, s).dram_writes,
           "MOESI iMC writes below MESIF on a read-shared scenario");
  }
  expect(cell_of(cells, kMoesi, 2).dram_writes ==
             cell_of(cells, kMesif, 2).dram_writes,
         "write/write false sharing costs MOESI and MESIF the same iMC "
         "writes (ownership migrates cache-to-cache)");
  expect(cell_of(cells, kDragon, 0).mean_ns < cell_of(cells, kMesif, 0).mean_ns,
         "Dragon mean latency below MESIF on pingpong (updates avoid the "
         "invalidation ping-pong)");
  expect(cell_of(cells, kDragon, 0).updates_sent > 0,
         "Dragon sends update broadcasts on pingpong");
  expect(cell_of(cells, kMesif, 0).updates_sent == 0,
         "MESIF never sends updates");
  // The padded control: with private lines there is nothing to share, so
  // the families converge.
  expect(cell_of(cells, kDragon, 3).updates_sent == 0,
         "padded false sharing generates no Dragon updates");

  if (ok) std::printf("\nmatrix expectations: ok\n");
  return ok ? 0 : 1;
}
