// Table II: the simulated test system's configuration.
#include <cstdio>
#include <string>

#include "common.h"
#include "machine/specs.h"

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Table II: test system configuration");
  hswbench::warn_untraced(args);
  const hsw::TestSystemSpec& spec = hsw::test_system_spec();

  hsw::Table table({"component", "configuration"});
  table.set_align(1, hsw::Table::Align::kLeft);
  table.add_row({"processors", std::string(spec.processor)});
  table.add_row({"cores", std::to_string(spec.cores_per_socket) +
                              " per socket, " + hsw::cell(spec.base_ghz, 1) +
                              " GHz (AVX base " + hsw::cell(spec.avx_base_ghz, 1) +
                              " GHz)"});
  table.add_row({"L1", std::string(spec.l1)});
  table.add_row({"L2", std::string(spec.l2)});
  table.add_row({"L3", std::string(spec.l3)});
  table.add_row({"memory", std::string(spec.memory)});
  table.add_row({"QPI", std::string(spec.qpi)});
  table.add_row({"BIOS modes", std::string(spec.bios_modes)});

  // Verify the constructed machine agrees with the spec sheet; the golden
  // CSV also pins the full calibrated timing model, so *any* TimingParams
  // change (including display-only fields like core_ghz) fails table2's
  // golden until the goldens are deliberately regenerated.
  hsw::System sys(hsw::SystemConfig::source_snoop());
  table.add_separator();
  table.add_row({"machine", sys.config().describe()});
  hsw::for_each_timing_field(sys.timing(),
                             [&](const char* name, const double& value) {
                               table.add_row({std::string("timing ") + name,
                                              hsw::cell(value, 2)});
                             });

  hswbench::print_table("Table II: test system", table, args.csv);
  std::printf("\nconstructed machine: %s\n", sys.config().describe().c_str());
  std::printf("cores: %d, NUMA nodes: %d, L3 per node: %s, DRAM per node: %s\n",
              sys.core_count(), sys.node_count(),
              hsw::format_bytes(sys.node_l3_bytes(0)).c_str(),
              hsw::format_gbps(sys.node_dram_bandwidth_gbps(0)).c_str());
  return 0;
}
