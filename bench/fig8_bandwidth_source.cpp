// Fig. 8: single-threaded read bandwidth vs data-set size, default
// configuration — own hierarchy with AVX vs SSE loads, plus core-to-core
// and cross-socket streams for modified and exclusive lines.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Fig. 8: single-threaded read bandwidth, source snoop");
  const std::vector<std::uint64_t> sizes =
      hswbench::figure_sizes(args, hsw::mib(64));
  const hsw::SystemConfig config = hsw::SystemConfig::source_snoop();

  std::vector<hswbench::BandwidthSeriesPlan> plans;
  auto sweep = [&](std::string name, int owner, hsw::Mesif state,
                   hsw::bw::LoadWidth width) {
    hsw::BandwidthSweepConfig sc;
    sc.system = config;
    sc.stream.core = 0;
    sc.stream.width = width;
    sc.stream.placement.owner_core = owner;
    sc.stream.placement.memory_node = owner >= 12 ? 1 : 0;
    sc.stream.placement.state = state;
    sc.sizes = sizes;
    sc.seed = args.seed;
    sc.sampling = args.sampling;
    sc.engine = args.engine;
    plans.push_back({std::move(name), std::move(sc)});
  };

  sweep("local M avx", 0, hsw::Mesif::kModified, hsw::bw::LoadWidth::kAvx256);
  sweep("local M sse", 0, hsw::Mesif::kModified, hsw::bw::LoadWidth::kSse128);
  sweep("node M", 1, hsw::Mesif::kModified, hsw::bw::LoadWidth::kAvx256);
  sweep("node E", 1, hsw::Mesif::kExclusive, hsw::bw::LoadWidth::kAvx256);
  sweep("socket2 M", 12, hsw::Mesif::kModified, hsw::bw::LoadWidth::kAvx256);
  sweep("socket2 E", 12, hsw::Mesif::kExclusive, hsw::bw::LoadWidth::kAvx256);

  hswbench::BenchTrace trace(args);
  for (std::size_t p = 0; p < plans.size(); ++p) {
    plans[p].config.trace = trace.bandwidth_plan_options(p);
  }

  const std::vector<hswbench::Series> series =
      hswbench::run_bandwidth_series(plans, args);
  hswbench::print_sized_series(
      "Fig. 8: single-threaded read bandwidth, default configuration", sizes,
      series, args.csv, "GB/s");
  hswbench::print_paper_note(
      "L1 127.2 (AVX) / 77.1 (SSE); L2 69.1 / 48.2; local L3 26.2; "
      "core-to-core M: 7.8 (L1) 10.6 (L2) on-chip, 6.7/8.1 cross-socket; "
      "M in L3: 26.2 local / 9.1 remote; E with core snoop: 15.0 local / "
      "8.7 remote; local memory 10.3, remote memory 8.0 GB/s");
  trace.finish();
  return 0;
}
