// Frequency-variability study (paper §III-A, §V-B, §VII-B).
//
// The paper reports that L3 bandwidth measurements are not reliably
// reproducible: 278 GB/s typically, "up to 343 GB/s" when uncore frequency
// scaling latches the boost ceiling, and that AVX workloads run at the
// 2.1 GHz AVX base frequency.  This bench runs the frequency model over
// many simulated measurement runs and reports the distribution — the band
// the paper says it filtered its figures against.
#include <cstdio>

#include "common.h"
#include "machine/frequency.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Frequency variability of the L3 bandwidth measurements");
  hswbench::warn_untraced(args);

  const hsw::FrequencyModel model;
  hsw::Xoshiro256 rng(args.seed);

  // The calibrated 12-core aggregate L3 read bandwidth at the nominal
  // uncore operating point.
  const double nominal_l3_read = 278.0;
  const int runs = args.quick ? 200 : 2000;

  hsw::Accumulator samples;
  int boosted_runs = 0;
  for (int r = 0; r < runs; ++r) {
    const auto sample = model.sample_run(/*utilization=*/1.0, rng);
    samples.add(nominal_l3_read * sample.bandwidth_scale);
    boosted_runs += sample.boosted;
  }

  hsw::Table table({"statistic", "value"});
  table.add_row({"runs", std::to_string(runs)});
  table.add_row({"median", hsw::format_gbps(samples.median())});
  table.add_row({"p95", hsw::format_gbps(samples.percentile(0.95))});
  table.add_row({"max", hsw::format_gbps(samples.max())});
  table.add_row({"min", hsw::format_gbps(samples.min())});
  table.add_row({"boosted runs", std::to_string(boosted_runs)});
  std::printf("Simulated run-to-run variability of 12-core L3 read "
              "bandwidth\n%s",
              table.to_string().c_str());

  std::printf("\nAVX licence effect on core frequency:\n");
  hsw::Table freq({"workload", "core frequency", "L1 peak scale"});
  for (auto [name, avx] : {std::pair{"scalar / SSE", 0.0}, {"mixed", 0.5},
                           {"sustained AVX", 1.0}}) {
    const double ghz = model.core_ghz(avx);
    char scale[32];
    std::snprintf(scale, sizeof scale, "%.2fx", ghz / model.nominal_core_ghz);
    freq.add_row({name, hsw::cell(ghz, 2) + " GHz", scale});
  }
  std::printf("%s", freq.to_string().c_str());
  hswbench::print_paper_note(
      "typical L3 read 278 GB/s with occasional boosts up to 343 GB/s "
      "(uncore frequency scaling); AVX base frequency 2.1 GHz vs nominal "
      "2.5 GHz");
  return 0;
}
