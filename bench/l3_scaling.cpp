// §VII-B (text): aggregate L3 read/write bandwidth scaling with core count.
// Paper: read scales 26.2 -> 278 GB/s over 12 cores (23.2 GB/s per core),
// write 15 -> 161 GB/s; in COD mode ~154 GB/s read / 94 GB/s write per node.
#include <cstdio>

#include "common.h"

namespace {

double l3_aggregate(hswbench::BenchTrace& trace,
                    const hsw::SystemConfig& config,
                    const std::vector<int>& cores, bool write,
                    std::uint64_t seed) {
  hsw::System sys(config);
  hsw::BandwidthConfig bc;
  for (int core : cores) {
    hsw::StreamConfig stream;
    stream.core = core;
    stream.write = write;
    stream.placement.owner_core = core;
    stream.placement.memory_node =
        sys.topology().node_of_core(core);
    stream.placement.state = hsw::Mesif::kModified;
    stream.placement.level = hsw::CacheLevel::kL3;
    bc.streams.push_back(stream);
  }
  bc.buffer_bytes = hsw::kib(512);
  bc.seed = seed;
  return trace.measure_bw(sys, bc).total_gbps;
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "L3 aggregate bandwidth scaling (paper section VII-B)");
  hswbench::BenchTrace trace(args);
  const int max_cores = args.quick ? 4 : 12;

  std::vector<std::string> header{"cores"};
  for (int c = 1; c <= max_cores; ++c) header.push_back(std::to_string(c));
  hsw::Table table(header);

  for (bool write : {false, true}) {
    std::vector<std::string> row{write ? "L3 write (socket)" : "L3 read (socket)"};
    for (int c = 1; c <= max_cores; ++c) {
      std::vector<int> cores;
      for (int i = 0; i < c; ++i) cores.push_back(i);
      row.push_back(hsw::cell(
          l3_aggregate(trace, hsw::SystemConfig::source_snoop(), cores, write,
                       args.seed), 0));
    }
    table.add_row(std::move(row));
  }
  // COD: one node's six cores.
  for (bool write : {false, true}) {
    std::vector<std::string> row{write ? "L3 write (COD node)" : "L3 read (COD node)"};
    for (int c = 1; c <= max_cores; ++c) {
      if (c > 6) {
        row.push_back("");
        continue;
      }
      std::vector<int> cores;
      for (int i = 0; i < c; ++i) cores.push_back(i);
      row.push_back(hsw::cell(
          l3_aggregate(trace, hsw::SystemConfig::cluster_on_die(), cores, write,
                       args.seed), 0));
    }
    table.add_row(std::move(row));
  }

  hswbench::print_table("L3 aggregate bandwidth (GB/s) vs reading/writing cores",
                        table, args.csv);
  hswbench::print_paper_note(
      "read 26.2 -> 278 GB/s over 12 cores (23.2/core, occasional boosts to "
      "343 from uncore frequency scaling); write 15 -> 161 GB/s; COD: "
      "154 read / 94 write per node");
  trace.finish();
  return 0;
}
