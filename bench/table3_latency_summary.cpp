// Table III: latency summary across the three coherence configurations.
//
// Rows: L3 (state exclusive) and memory, local and remote; columns: default
// (source snoop), Early Snoop disabled (home snoop), and the three COD core
// groups (first node; second node cores on ring 0; second node cores on
// ring 1) — the per-group differences come from the asymmetric-ring to
// balanced-NUMA mapping.
#include <cstdio>

#include "common.h"

namespace {

double l3_latency(hswbench::BenchTrace& trace, const std::string& label,
                  const hsw::SystemConfig& config, int reader, int owner,
                  int node, std::uint64_t seed) {
  hsw::System sys(config);
  hsw::LatencyConfig lc;
  lc.reader_core = reader;
  lc.placement.owner_core = owner;
  lc.placement.memory_node = node;
  lc.placement.state = hsw::Mesif::kExclusive;
  lc.placement.level = hsw::CacheLevel::kL3;
  lc.buffer_bytes = hsw::kib(512);
  lc.max_measured_lines = 2048;
  lc.seed = seed;
  return trace.measure(sys, lc, "L3 " + label).mean_ns;
}

double mem_latency(hswbench::BenchTrace& trace, const std::string& label,
                   const hsw::SystemConfig& config, int reader, int node,
                   std::uint64_t seed) {
  hsw::System sys(config);
  hsw::LatencyConfig lc;
  lc.reader_core = reader;
  lc.placement.owner_core = reader;
  lc.placement.memory_node = node;
  lc.placement.state = hsw::Mesif::kModified;
  lc.placement.level = hsw::CacheLevel::kMemory;
  lc.buffer_bytes = hsw::mib(4);
  lc.max_measured_lines = 4096;
  lc.seed = seed;
  return trace.measure(sys, lc, "memory " + label).mean_ns;
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args =
      hswbench::parse_args(argc, argv, "Table III: latency summary");
  const std::uint64_t seed = args.seed;
  hswbench::BenchTrace trace(args);

  const hsw::SystemConfig source = hsw::SystemConfig::source_snoop();
  const hsw::SystemConfig home = hsw::SystemConfig::home_snoop();
  const hsw::SystemConfig cod = hsw::SystemConfig::cluster_on_die();
  hsw::System probe(cod);
  const hsw::SystemTopology& topo = probe.topology();

  // COD reader per core group and the nodes it measures against.
  struct Group {
    const char* name;
    int reader;
    int local_node;
  };
  const Group groups[] = {
      {"COD first node", 0, 0},
      {"COD 2nd node ring0", 6, 1},
      {"COD 2nd node ring1", 8, 1},
  };

  hsw::Table table({"", "source", "default", "Early Snoop off",
                    "COD 1st node", "COD 2nd/ring0", "COD 2nd/ring1"});
  auto fmt = [](double v) { return hsw::cell(v, 1); };

  // --- L3 rows -------------------------------------------------------------
  {
    std::vector<std::string> row{"L3", "local"};
    row.push_back(fmt(l3_latency(trace, "local/source", source, 0, 0, 0, seed)));
    row.push_back(fmt(l3_latency(trace, "local/home", home, 0, 0, 0, seed)));
    for (const Group& g : groups) {
      row.push_back(fmt(l3_latency(trace, std::string("local/") + g.name, cod,
                                   g.reader, g.reader, g.local_node, seed)));
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"L3", "remote 1st node"};
    row.push_back(fmt(l3_latency(trace, "remote1/source", source, 0, 12, 1, seed)));
    row.push_back(fmt(l3_latency(trace, "remote1/home", home, 0, 12, 1, seed)));
    for (const Group& g : groups) {
      row.push_back(fmt(l3_latency(trace, std::string("remote1/") + g.name,
                                   cod, g.reader, topo.node(2).cores[0], 2,
                                   seed)));
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"L3", "remote 2nd node", "", ""};
    for (const Group& g : groups) {
      row.push_back(fmt(l3_latency(trace, std::string("remote2/") + g.name,
                                   cod, g.reader, topo.node(3).cores[0], 3,
                                   seed)));
    }
    table.add_row(std::move(row));
  }
  table.add_separator();

  // --- memory rows -----------------------------------------------------------
  {
    std::vector<std::string> row{"memory", "local"};
    row.push_back(fmt(mem_latency(trace, "local/source", source, 0, 0, seed)));
    row.push_back(fmt(mem_latency(trace, "local/home", home, 0, 0, seed)));
    for (const Group& g : groups) {
      row.push_back(fmt(mem_latency(trace, std::string("local/") + g.name,
                                    cod, g.reader, g.local_node, seed)));
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"memory", "remote 1st node"};
    row.push_back(fmt(mem_latency(trace, "remote1/source", source, 0, 1, seed)));
    row.push_back(fmt(mem_latency(trace, "remote1/home", home, 0, 1, seed)));
    for (const Group& g : groups) {
      row.push_back(fmt(mem_latency(trace, std::string("remote1/") + g.name,
                                    cod, g.reader, 2, seed)));
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"memory", "remote 2nd node", "", ""};
    for (const Group& g : groups) {
      row.push_back(fmt(mem_latency(trace, std::string("remote2/") + g.name,
                                    cod, g.reader, 3, seed)));
    }
    table.add_row(std::move(row));
  }

  hswbench::print_table("Table III: latency in nanoseconds (L3 values: state E)",
                        table, args.csv);
  hswbench::print_paper_note(
      "L3 local 21.2 | 21.2 | 18.0 | 20.0 | 18.4;  L3 remote 104 | 115 | "
      "104/113 | 108/118 | 111/120;  memory local 96.4 | 108 | 89.6 | 94.0 | "
      "90.4;  memory remote 146 | 148 | 141/147 | 145/151 | 148/153");
  trace.finish();
  return 0;
}
