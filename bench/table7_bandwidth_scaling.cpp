// Table VII: memory read/write bandwidth scaling with the number of
// concurrently accessing cores, source snoop vs home snoop.
//
// The headline result: remote read bandwidth nearly doubles with Early
// Snoop disabled (16.8 -> 30.6 GB/s) because the QPI links stop carrying
// the source-snoop broadcast traffic.
#include <cstdio>

#include "common.h"

namespace {

struct ScalingPoint {
  double total_gbps = 0.0;
  // Simulated engine only: mean per-line queueing delay across the streams
  // and the bottleneck named by the most-queued stream (empty otherwise).
  double mean_queue_ns = 0.0;
  std::string bottleneck;
};

ScalingPoint scaling_point(hswbench::BenchTrace& trace,
                           const hsw::SystemConfig& config, int cores,
                           int node, bool write, std::uint64_t seed,
                           hsw::BandwidthEngine engine) {
  hsw::System sys(config);
  hsw::BandwidthConfig bc;
  for (int c = 0; c < cores; ++c) {
    hsw::StreamConfig stream;
    stream.core = c;
    stream.write = write;
    stream.placement.owner_core = c;
    stream.placement.memory_node = node;
    stream.placement.state = hsw::Mesif::kModified;
    stream.placement.level = hsw::CacheLevel::kMemory;
    bc.streams.push_back(stream);
  }
  bc.buffer_bytes = hsw::mib(2);
  bc.seed = seed;
  bc.engine = engine;
  const hsw::BandwidthResult result = trace.measure_bw(sys, bc);
  ScalingPoint point;
  point.total_gbps = result.total_gbps;
  double worst = -1.0;
  for (const hsw::StreamResult& sr : result.streams) {
    point.mean_queue_ns += sr.queue_ns / static_cast<double>(cores);
    if (sr.queue_ns > worst) {
      worst = sr.queue_ns;
      point.bottleneck = sr.bottleneck;
    }
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const hswbench::BenchArgs args = hswbench::parse_args(
      argc, argv, "Table VII: memory bandwidth scaling, source vs home snoop");

  hswbench::BenchTrace trace(args);
  const int max_cores = args.quick ? 4 : 12;
  const bool simulated = args.engine == hsw::BandwidthEngine::kSimulated;
  std::vector<std::string> header{"source"};
  for (int c = 1; c <= max_cores; ++c) header.push_back(std::to_string(c));
  if (simulated) {
    // Queueing columns (simulated engine only) describe the fully loaded
    // point — the max-cores measurement, where the bottleneck is visible.
    header.push_back("queue_ns");
    header.push_back("bottleneck");
  }
  hsw::Table table(header);

  struct Row {
    const char* name;
    hsw::SystemConfig config;
    int node;
    bool write;
  };
  const Row rows[] = {
      {"local read (source snoop)", hsw::SystemConfig::source_snoop(), 0, false},
      {"local read (home snoop)", hsw::SystemConfig::home_snoop(), 0, false},
      {"local write", hsw::SystemConfig::source_snoop(), 0, true},
      {"remote read (source snoop)", hsw::SystemConfig::source_snoop(), 1, false},
      {"remote read (home snoop)", hsw::SystemConfig::home_snoop(), 1, false},
  };
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.name};
    ScalingPoint last;
    for (int c = 1; c <= max_cores; ++c) {
      last = scaling_point(trace, row.config, c, row.node, row.write,
                           args.seed, args.engine);
      cells.push_back(hsw::cell(last.total_gbps, 1));
    }
    if (simulated) {
      cells.push_back(hsw::cell(last.mean_queue_ns, 3));
      cells.push_back(last.bottleneck);
    }
    table.add_row(std::move(cells));
  }

  hswbench::print_table(
      "Table VII: memory bandwidth (GB/s) vs concurrently accessing cores",
      table, args.csv);
  hswbench::print_paper_note(
      "local read saturates at ~63 GB/s (both modes; home snoop slower for "
      "<= 7 cores); write peaks at 26.5 GB/s (5 cores) and ends at 25.8; "
      "remote read: 16.8 GB/s source snoop vs 30.6 GB/s home snoop");
  trace.finish();
  return 0;
}
